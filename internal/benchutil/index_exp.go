package benchutil

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/seqstore"
	"repro/internal/series"
	"repro/internal/vptree"
)

// IOModel charges latency to record reads so that the fig. 23 comparison
// can be evaluated under a 2004-era storage stack (the paper's testbed),
// where fetching one uncompressed sequence was a real random disk read. On
// a modern container the OS page cache makes reads nearly free, which hides
// exactly the cost the paper's index saves; the model restores it. See
// EXPERIMENTS.md for the calibration discussion.
type IOModel struct {
	// SeqRead is the charged cost of fetching one uncompressed sequence
	// record (random 8 KiB read on a 2004 disk ≈ 5 ms).
	SeqRead time.Duration
	// FeatRead is the charged cost of fetching one compressed feature
	// record (a ~300 B record in a small, mostly cache-resident file).
	FeatRead time.Duration
}

// Disk2004 is the default model: 5 ms per uncompressed-sequence read,
// 0.2 ms per compressed-feature read.
var Disk2004 = IOModel{SeqRead: 5 * time.Millisecond, FeatRead: 200 * time.Microsecond}

// IndexCell is one (dataset size, budget) cell of fig. 23.
type IndexCell struct {
	DatasetSize int
	Budget      int
	// LinearScan, IndexDisk and IndexMemory are measured wall times for the
	// whole query workload (disk/memory refers to where the compressed
	// features live; uncompressed sequences are always on disk).
	LinearScan, IndexDisk, IndexMemory time.Duration
	// LinearSeqReads counts uncompressed-sequence fetches by the scan.
	LinearSeqReads int64
	// IndexSeqReads counts uncompressed-sequence fetches by the index
	// (identical for both feature placements).
	IndexSeqReads int64
	// IndexFeatReads counts feature-record fetches of the disk-feature
	// configuration.
	IndexFeatReads int64
	// IndexStats is the aggregate search work over the whole query workload
	// (accumulated with vptree.Stats.Add; identical for both feature
	// placements, so only the memory run's aggregate is kept).
	IndexStats vptree.Stats
	// Correct reports whether every index answer matched the linear scan.
	Correct bool
}

// SpeedupDisk returns measured LinearScan / IndexDisk.
func (c IndexCell) SpeedupDisk() float64 {
	if c.IndexDisk == 0 {
		return math.Inf(1)
	}
	return float64(c.LinearScan) / float64(c.IndexDisk)
}

// SpeedupMemory returns measured LinearScan / IndexMemory.
func (c IndexCell) SpeedupMemory() float64 {
	if c.IndexMemory == 0 {
		return math.Inf(1)
	}
	return float64(c.LinearScan) / float64(c.IndexMemory)
}

// Modeled returns the three workload times under the I/O model: measured
// compute time plus charged read latencies.
func (c IndexCell) Modeled(m IOModel) (linear, idxDisk, idxMem time.Duration) {
	linear = c.LinearScan + time.Duration(c.LinearSeqReads)*m.SeqRead
	idxDisk = c.IndexDisk + time.Duration(c.IndexSeqReads)*m.SeqRead +
		time.Duration(c.IndexFeatReads)*m.FeatRead
	idxMem = c.IndexMemory + time.Duration(c.IndexSeqReads)*m.SeqRead
	return linear, idxDisk, idxMem
}

// ModeledSpeedups returns linear/idxDisk and linear/idxMem under the model.
func (c IndexCell) ModeledSpeedups(m IOModel) (disk, mem float64) {
	l, d, me := c.Modeled(m)
	return float64(l) / float64(d), float64(l) / float64(me)
}

// IndexExperiment reproduces fig. 23.
type IndexExperiment struct {
	Cells   []IndexCell
	Queries int
	Model   IOModel
}

// RunIndex measures 1NN latency and I/O for every (size, budget)
// combination. The uncompressed sequences always live in a disk store (as
// in the paper); the two index configurations differ in where the
// compressed features live. tmpDir receives the store and feature files.
func RunIndex(c *Corpus, sizes, budgets []int, tmpDir string) (*IndexExperiment, error) {
	exp := &IndexExperiment{Queries: len(c.Queries), Model: Disk2004}
	for _, size := range sizes {
		if size > len(c.Data) {
			size = len(c.Data)
		}
		seqLen := c.Data[0].Len()
		storePath := filepath.Join(tmpDir, fmt.Sprintf("seqs-%d.bin", size))
		store, err := seqstore.Create(storePath, seqLen)
		if err != nil {
			return nil, err
		}
		ids := make([]int, size)
		for i := 0; i < size; i++ {
			id, err := store.Append(c.Data[i].Values)
			if err != nil {
				store.Close()
				return nil, err
			}
			ids[i] = id
		}
		for _, budget := range budgets {
			cell, err := runIndexCell(c, store, ids, size, budget, tmpDir)
			if err != nil {
				store.Close()
				return nil, err
			}
			exp.Cells = append(exp.Cells, *cell)
		}
		store.Close()
		os.Remove(storePath)
	}
	return exp, nil
}

func runIndexCell(c *Corpus, store *seqstore.Disk, ids []int, size, budget int, tmpDir string) (*IndexCell, error) {
	seqLen := c.Data[0].Len()
	// PaperBounds: the experiment reproduces the paper's own algorithm
	// (fig. 9 bounds); the `correct` column cross-checks every answer
	// against the linear scan.
	tree, err := vptree.Build(c.Spectra[:size], ids, vptree.Options{Budget: budget, PaperBounds: true})
	if err != nil {
		return nil, err
	}
	featPath := filepath.Join(tmpDir, fmt.Sprintf("feats-%d-%d.bin", size, budget))
	disk, err := vptree.WriteFeatures(featPath, tree.Features())
	if err != nil {
		return nil, err
	}
	defer func() {
		disk.Close()
		os.Remove(featPath)
	}()

	cell := &IndexCell{DatasetSize: size, Budget: budget, Correct: true}

	// Linear scan baseline with early abandoning.
	linResults := make([]float64, len(c.Queries))
	store.ResetReads()
	start := time.Now()
	buf := make([]float64, seqLen)
	for qi, q := range c.Queries {
		best := math.Inf(1)
		for id := 0; id < size; id++ {
			if err := store.GetInto(id, buf); err != nil {
				return nil, err
			}
			d, abandoned, err := series.EuclideanEarlyAbandon(q.Values, buf, best)
			if err != nil {
				return nil, err
			}
			if !abandoned && d < best {
				best = d
			}
		}
		linResults[qi] = best
	}
	cell.LinearScan = time.Since(start)
	cell.LinearSeqReads = store.Reads()

	run := func(src vptree.FeatureSource) (time.Duration, int64, vptree.Stats, error) {
		store.ResetReads()
		var agg vptree.Stats
		start := time.Now()
		for qi, q := range c.Queries {
			res, st, err := tree.Search(q.Values, 1, src, store)
			if err != nil {
				return 0, 0, agg, err
			}
			agg.Add(st)
			if len(res) != 1 || math.Abs(res[0].Dist-linResults[qi]) > 1e-9 {
				cell.Correct = false
			}
		}
		return time.Since(start), store.Reads(), agg, nil
	}
	if cell.IndexDisk, _, _, err = run(disk); err != nil {
		return nil, err
	}
	cell.IndexFeatReads = disk.Reads()
	if cell.IndexMemory, cell.IndexSeqReads, cell.IndexStats, err = run(tree.Features()); err != nil {
		return nil, err
	}
	return cell, nil
}

// Cell returns the cell for (size, budget).
func (e *IndexExperiment) Cell(size, budget int) (IndexCell, bool) {
	for _, c := range e.Cells {
		if c.DatasetSize == size && c.Budget == budget {
			return c, true
		}
	}
	return IndexCell{}, false
}

// Print renders the fig. 23 table: measured wall times, I/O counts, and
// speedups under the 2004-disk model.
func (e *IndexExperiment) Print(w io.Writer) {
	Fprintf(w, "Fig. 23 — 1NN cost, %d queries (linear scan vs index)\n", e.Queries)
	Fprintf(w, "  (modeled columns charge %v per sequence read and %v per feature read;\n",
		e.Model.SeqRead, e.Model.FeatRead)
	Fprintf(w, "   see EXPERIMENTS.md for the 2004-disk calibration)\n")
	Fprintf(w, "  %8s %9s %11s %11s %11s %9s %9s | %9s %9s %8s\n",
		"dataset", "doubles", "linear", "idx-disk", "idx-mem",
		"seq-rd/q", "feat-rd/q", "mod-disk", "mod-mem", "correct")
	for _, c := range e.Cells {
		q := int64(e.Queries)
		if q == 0 {
			q = 1
		}
		mDisk, mMem := c.ModeledSpeedups(e.Model)
		Fprintf(w, "  %8d 2*(%2d)+1 %11s %11s %11s %9d %9d | %8.1fx %8.1fx %8v\n",
			c.DatasetSize, c.Budget,
			c.LinearScan.Round(time.Microsecond),
			c.IndexDisk.Round(time.Microsecond),
			c.IndexMemory.Round(time.Microsecond),
			c.IndexSeqReads/q, c.IndexFeatReads/q,
			mDisk, mMem, c.Correct)
	}
}
