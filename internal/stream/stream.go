// Package stream provides online variants of the system's detectors for the
// production setting the paper motivates: a live search service appends one
// count per query per day, and wants bursts flagged as they happen rather
// than by re-scanning history.
//
//   - Stat: Welford running mean/standard deviation.
//   - BurstDetector: the §6.1 moving-average detector in incremental form.
//     The burst mask (MA above mean(MA) + x·std(MA)) is invariant under
//     affine transforms of the input, so the online detector consumes raw
//     counts and still agrees with the batch detector run on standardized
//     data — up to the horizon difference (online thresholds use the
//     history so far, batch uses the whole series; they converge as the
//     stream grows, which the tests quantify).
//   - PeriodTracker: a sliding-window periodogram for on-demand §5 period
//     checks over the most recent W days.
package stream

import (
	"errors"
	"math"

	"repro/internal/burst"
	"repro/internal/obs"
	"repro/internal/periods"
)

// Stat maintains running mean and standard deviation (Welford's algorithm).
type Stat struct {
	n    int
	mean float64
	m2   float64
}

// Push adds one observation.
func (s *Stat) Push(v float64) {
	s.n++
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// N returns the number of observations.
func (s *Stat) N() int { return s.n }

// Mean returns the running mean (0 before any observation).
func (s *Stat) Mean() float64 { return s.mean }

// Std returns the running population standard deviation.
func (s *Stat) Std() float64 {
	if s.n == 0 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n))
}

// EventKind distinguishes burst boundaries.
type EventKind int

const (
	// BurstOpen fires on the first day the moving average exceeds the
	// cutoff.
	BurstOpen EventKind = iota
	// BurstClose fires on the first day it no longer does; the event
	// carries the compacted triplet of the closed burst.
	BurstClose
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if k == BurstOpen {
		return "open"
	}
	return "close"
}

// Event is one burst boundary.
type Event struct {
	Kind EventKind
	// Day is the day index the event fired on.
	Day int
	// Burst is the compacted triplet; valid for BurstClose (Avg is in raw
	// input units — use the detector's Mean/Std to z-score if needed).
	Burst burst.Burst
}

// BurstDetector is the incremental §6.1 detector.
type BurstDetector struct {
	window int
	cutoff float64

	ring  []float64 // last `window` values
	pos   int
	count int
	sum   float64 // sum of ring

	maStats Stat // running stats of the moving average
	inStats Stat // running stats of the raw input (for callers' z-scoring)

	inBurst    bool
	burstStart int
	burstSum   float64
	day        int

	points *obs.Counter // observations consumed
	events *obs.Counter // burst boundary events emitted
}

// SetMetrics mirrors the detector's throughput into obs counters: points
// counts observations consumed, events counts burst boundaries emitted
// (opens and closes, including Flush). Either counter may be nil.
func (d *BurstDetector) SetMetrics(points, events *obs.Counter) {
	d.points, d.events = points, events
}

// NewBurstDetector creates an online detector with the given moving-average
// window and cutoff multiplier x (§6.1; burst.DefaultCutoff = 1.5).
func NewBurstDetector(window int, cutoff float64) (*BurstDetector, error) {
	if window < 1 {
		return nil, errors.New("stream: window must be >= 1")
	}
	if cutoff <= 0 {
		return nil, errors.New("stream: cutoff must be positive")
	}
	return &BurstDetector{
		window: window,
		cutoff: cutoff,
		ring:   make([]float64, window),
	}, nil
}

// Push consumes one day's count and returns any burst boundary events.
func (d *BurstDetector) Push(v float64) []Event {
	d.inStats.Push(v)
	// Trailing moving average with warm-up prefix, matching
	// stats.MovingAverage.
	if d.count == d.window {
		d.sum -= d.ring[d.pos]
	} else {
		d.count++
	}
	d.ring[d.pos] = v
	d.pos = (d.pos + 1) % d.window
	d.sum += v
	ma := d.sum / float64(d.count)
	d.maStats.Push(ma)

	threshold := d.maStats.Mean() + d.cutoff*d.maStats.Std()
	bursting := d.maStats.Std() > 0 && ma > threshold

	var events []Event
	switch {
	case bursting && !d.inBurst:
		d.inBurst = true
		d.burstStart = d.day
		d.burstSum = v
		events = append(events, Event{Kind: BurstOpen, Day: d.day})
	case bursting && d.inBurst:
		d.burstSum += v
	case !bursting && d.inBurst:
		d.inBurst = false
		b := burst.Burst{
			Start: d.burstStart,
			End:   d.day - 1,
			Avg:   d.burstSum / float64(d.day-d.burstStart),
		}
		events = append(events, Event{Kind: BurstClose, Day: d.day, Burst: b})
	}
	d.day++
	d.points.Inc()
	d.events.Add(int64(len(events)))
	return events
}

// Flush closes any open burst at the end of the stream and returns its
// event (or nil).
func (d *BurstDetector) Flush() []Event {
	if !d.inBurst {
		return nil
	}
	d.inBurst = false
	b := burst.Burst{
		Start: d.burstStart,
		End:   d.day - 1,
		Avg:   d.burstSum / float64(d.day-d.burstStart),
	}
	d.events.Inc()
	return []Event{{Kind: BurstClose, Day: d.day, Burst: b}}
}

// Day returns the number of days consumed.
func (d *BurstDetector) Day() int { return d.day }

// InputStats returns the running statistics of the raw input, for callers
// that want to z-score burst averages.
func (d *BurstDetector) InputStats() *Stat { return &d.inStats }

// PeriodTracker keeps the last `window` values and answers §5 period scans
// over them on demand.
type PeriodTracker struct {
	window int
	buf    []float64
	pos    int
	full   bool
}

// NewPeriodTracker creates a tracker over a sliding window of the given
// length (≥ 4 so the detector has spectrum to work with).
func NewPeriodTracker(window int) (*PeriodTracker, error) {
	if window < 4 {
		return nil, errors.New("stream: period window must be >= 4")
	}
	return &PeriodTracker{window: window, buf: make([]float64, window)}, nil
}

// Push appends one value.
func (p *PeriodTracker) Push(v float64) {
	p.buf[p.pos] = v
	p.pos = (p.pos + 1) % p.window
	if p.pos == 0 {
		p.full = true
	}
}

// Ready reports whether a full window has been observed.
func (p *PeriodTracker) Ready() bool { return p.full }

// Window returns the current window in chronological order.
func (p *PeriodTracker) Window() []float64 {
	out := make([]float64, 0, p.window)
	if !p.full {
		return append(out, p.buf[:p.pos]...)
	}
	out = append(out, p.buf[p.pos:]...)
	return append(out, p.buf[:p.pos]...)
}

// Detect runs the §5 detector over the current window.
func (p *PeriodTracker) Detect(confidence float64) (*periods.Detection, error) {
	if !p.full {
		return nil, errors.New("stream: window not yet full")
	}
	return periods.Detect(p.Window(), confidence)
}
