package stream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/burst"
	"repro/internal/querylog"
	"repro/internal/stats"
)

func TestStatMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Stat
	var xs []float64
	for i := 0; i < 500; i++ {
		v := rng.NormFloat64()*3 + 7
		s.Push(v)
		xs = append(xs, v)
	}
	m, sd := stats.MeanStd(xs)
	if math.Abs(s.Mean()-m) > 1e-9 || math.Abs(s.Std()-sd) > 1e-9 {
		t.Errorf("running %v/%v vs batch %v/%v", s.Mean(), s.Std(), m, sd)
	}
	if s.N() != 500 {
		t.Errorf("N = %d", s.N())
	}
	var empty Stat
	if empty.Mean() != 0 || empty.Std() != 0 {
		t.Error("empty Stat not zero")
	}
}

func TestNewBurstDetectorErrors(t *testing.T) {
	if _, err := NewBurstDetector(0, 1.5); err == nil {
		t.Error("expected error for window 0")
	}
	if _, err := NewBurstDetector(7, 0); err == nil {
		t.Error("expected error for cutoff 0")
	}
	if _, err := NewPeriodTracker(3); err == nil {
		t.Error("expected error for tiny period window")
	}
}

func TestOnlineBurstOnPlantedStep(t *testing.T) {
	d, err := NewBurstDetector(7, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for day := 0; day < 400; day++ {
		v := 10.0
		if day >= 200 && day < 230 {
			v = 100
		}
		events = append(events, d.Push(v)...)
	}
	events = append(events, d.Flush()...)
	var open, close []Event
	for _, e := range events {
		if e.Kind == BurstOpen {
			open = append(open, e)
		} else {
			close = append(close, e)
		}
	}
	if len(open) != 1 || len(close) != 1 {
		t.Fatalf("open/close = %d/%d: %v", len(open), len(close), events)
	}
	b := close[0].Burst
	if b.Start < 198 || b.Start > 205 || b.End < 226 || b.End > 240 {
		t.Errorf("burst [%d,%d], planted [200,229]", b.Start, b.End)
	}
	if b.Avg < 50 {
		t.Errorf("burst avg %v too low", b.Avg)
	}
}

// Property: events strictly alternate open/close, days are increasing, and
// every closed burst has Start ≤ End < close day.
func TestEventInvariantsProperty(t *testing.T) {
	f := func(seed int64, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 1 + int(wRaw)%30
		d, err := NewBurstDetector(w, 1.5)
		if err != nil {
			return false
		}
		n := 100 + rng.Intn(400)
		var events []Event
		for day := 0; day < n; day++ {
			v := rng.Float64() * 10
			if rng.Intn(50) == 0 {
				v += 200
			}
			events = append(events, d.Push(v)...)
		}
		events = append(events, d.Flush()...)
		wantOpen := true
		lastDay := -1
		for _, e := range events {
			if (e.Kind == BurstOpen) != wantOpen {
				return false
			}
			if e.Day < lastDay {
				return false
			}
			lastDay = e.Day
			if e.Kind == BurstClose {
				if e.Burst.Start > e.Burst.End || e.Burst.End >= e.Day {
					return false
				}
			}
			wantOpen = !wantOpen
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// On a long stream the online detector converges to the batch detector:
// every major batch burst in the second half of the series overlaps an
// online burst.
func TestOnlineConvergesToBatch(t *testing.T) {
	s := querylog.New(2).Exemplar(querylog.Easter)
	batch, err := burst.DetectStandardized(s.Values, burst.LongWindow, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewBurstDetector(burst.LongWindow, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	var online []burst.Burst
	for _, v := range s.Values {
		for _, e := range d.Push(v) {
			if e.Kind == BurstClose {
				online = append(online, e.Burst)
			}
		}
	}
	for _, e := range d.Flush() {
		online = append(online, e.Burst)
	}
	if d.Day() != s.Len() {
		t.Errorf("Day = %d", d.Day())
	}
	checked := 0
	for _, bb := range batch.Bursts {
		if bb.Start < s.Len()/2 || bb.Len() < 10 {
			continue // warm-up half and slivers are out of scope
		}
		checked++
		found := false
		for _, ob := range online {
			if burst.Overlap(bb, ob) > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("batch burst %v has no online counterpart (online: %v)", bb, online)
		}
	}
	if checked == 0 {
		t.Fatal("no late batch bursts to check against")
	}
	if s := d.InputStats(); s.N() != 1024 || s.Std() <= 0 {
		t.Errorf("input stats: %d/%v", s.N(), s.Std())
	}
}

func TestPeriodTracker(t *testing.T) {
	p, err := NewPeriodTracker(256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Detect(1e-4); err == nil {
		t.Error("expected not-ready error")
	}
	for i := 0; i < 300; i++ {
		p.Push(math.Sin(2*math.Pi*float64(i)/16) + 0.01*float64(i%3))
	}
	if !p.Ready() {
		t.Fatal("tracker not ready after 300 pushes")
	}
	w := p.Window()
	if len(w) != 256 {
		t.Fatalf("window length %d", len(w))
	}
	// Chronological order: the last pushed value is last in the window.
	last := math.Sin(2*math.Pi*299/16) + 0.01*float64(299%3)
	if w[255] != last {
		t.Errorf("window tail %v, want %v", w[255], last)
	}
	det, err := p.Detect(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if !det.HasPeriodNear(16, 0.5) {
		t.Errorf("sliding-window period not found: %v", det.Top(3))
	}
}

func TestPeriodTrackerPartialWindow(t *testing.T) {
	p, _ := NewPeriodTracker(8)
	p.Push(1)
	p.Push(2)
	w := p.Window()
	if len(w) != 2 || w[0] != 1 || w[1] != 2 {
		t.Errorf("partial window %v", w)
	}
}

func TestEventKindString(t *testing.T) {
	if BurstOpen.String() == BurstClose.String() {
		t.Error("EventKind String broken")
	}
}

func BenchmarkOnlinePush(b *testing.B) {
	d, err := NewBurstDetector(30, 1.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(float64(i % 37))
	}
}
