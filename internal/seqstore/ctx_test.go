package seqstore

import (
	"context"
	"errors"
	"testing"
)

func TestWithContextPassthroughForBackground(t *testing.T) {
	m, _ := NewMemory(4)
	if s := WithContext(context.Background(), m); s != Store(m) {
		t.Fatal("Background context should not wrap the store")
	}
	if s := WithContext(nil, m); s != Store(m) { //nolint:staticcheck // nil ctx tolerated by design
		t.Fatal("nil context should not wrap the store")
	}
}

func TestWithContextFailsReadsAfterCancel(t *testing.T) {
	m, _ := NewMemory(2)
	if _, err := m.Append([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := WithContext(ctx, m)

	if _, err := s.Get(0); err != nil {
		t.Fatalf("Get before cancel: %v", err)
	}
	before := m.Reads()
	cancel()
	if _, err := s.Get(0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Get after cancel = %v, want Canceled", err)
	}
	dst := make([]float64, 2)
	if err := s.GetInto(0, dst); !errors.Is(err, context.Canceled) {
		t.Fatalf("GetInto after cancel = %v, want Canceled", err)
	}
	if m.Reads() != before {
		t.Fatal("cancelled reads must not reach the underlying store")
	}
	if s.Len() != 1 || s.SeqLen() != 2 {
		t.Fatal("metadata methods must pass through")
	}
}
