// Package seqstore stores uncompressed time series as fixed-length binary
// records, either on disk or in memory. The similarity-search experiments
// need it to model the paper's setup faithfully: the index holds only
// compressed features, and every candidate that survives pruning costs a
// random read of the full sequence ("the full representation of the
// remaining objects is retrieved from the disk", §4.1; fig. 23 separates
// disk-resident from memory-resident storage).
//
// The disk backend is a flat file: an 8-byte header (magic + record length)
// followed by records of n float64 values each, addressed by sequence ID.
package seqstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
)

// Store is random-access storage of equal-length float64 sequences by ID.
type Store interface {
	// Append adds a sequence and returns its ID (IDs are dense from 0).
	Append(values []float64) (int, error)
	// Get reads sequence id into a freshly allocated slice.
	Get(id int) ([]float64, error)
	// GetInto reads sequence id into dst (must have length SeqLen).
	GetInto(id int, dst []float64) error
	// Len returns the number of stored sequences.
	Len() int
	// SeqLen returns the per-sequence length.
	SeqLen() int
	// Reads returns the number of Get/GetInto calls served (the random-I/O
	// counter the experiments report).
	Reads() int64
	// ResetReads zeroes the read counter.
	ResetReads()
	// Close releases resources.
	Close() error
}

// ErrNotFound is returned for out-of-range sequence IDs.
var ErrNotFound = errors.New("seqstore: sequence not found")

// ErrBadLength is returned when a sequence's length does not match the store.
var ErrBadLength = errors.New("seqstore: sequence length mismatch")

// ---------------------------------------------------------------------------
// In-memory backend

// Memory is the in-memory Store backend.
type Memory struct {
	mu     sync.RWMutex
	seqLen int
	data   [][]float64
	reads  int64
}

// NewMemory creates an in-memory store for sequences of length seqLen.
func NewMemory(seqLen int) (*Memory, error) {
	if seqLen <= 0 {
		return nil, errors.New("seqstore: sequence length must be positive")
	}
	return &Memory{seqLen: seqLen}, nil
}

// Append implements Store.
func (m *Memory) Append(values []float64) (int, error) {
	if len(values) != m.seqLen {
		return 0, ErrBadLength
	}
	cp := make([]float64, len(values))
	copy(cp, values)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = append(m.data, cp)
	return len(m.data) - 1, nil
}

// Get implements Store.
func (m *Memory) Get(id int) ([]float64, error) {
	dst := make([]float64, m.seqLen)
	if err := m.GetInto(id, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// GetInto implements Store.
func (m *Memory) GetInto(id int, dst []float64) error {
	if len(dst) != m.seqLen {
		return ErrBadLength
	}
	m.mu.Lock()
	m.reads++
	if id < 0 || id >= len(m.data) {
		m.mu.Unlock()
		return ErrNotFound
	}
	src := m.data[id]
	m.mu.Unlock()
	copy(dst, src)
	return nil
}

// Len implements Store.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data)
}

// SeqLen implements Store.
func (m *Memory) SeqLen() int { return m.seqLen }

// Reads implements Store.
func (m *Memory) Reads() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.reads
}

// ResetReads implements Store.
func (m *Memory) ResetReads() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reads = 0
}

// Close implements Store.
func (m *Memory) Close() error { return nil }

// ---------------------------------------------------------------------------
// Disk backend

const (
	magic      = uint32(0x53514c47) // "SQLG"
	headerSize = 8                  // magic + uint32 record length
)

// Disk is the file-backed Store backend.
type Disk struct {
	mu     sync.Mutex
	f      *os.File
	seqLen int
	count  int
	reads  int64
	buf    []byte // scratch record buffer, guarded by mu
}

// Create creates (or truncates) a disk store at path for sequences of
// length seqLen.
func Create(path string, seqLen int) (*Disk, error) {
	if seqLen <= 0 {
		return nil, errors.New("seqstore: sequence length must be positive")
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("seqstore: create: %w", err)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(seqLen))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("seqstore: write header: %w", err)
	}
	return &Disk{f: f, seqLen: seqLen, buf: make([]byte, 8*seqLen)}, nil
}

// Open opens an existing disk store.
func Open(path string) (*Disk, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("seqstore: open: %w", err)
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("seqstore: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magic {
		f.Close()
		return nil, errors.New("seqstore: bad magic")
	}
	seqLen := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if seqLen <= 0 {
		f.Close()
		return nil, errors.New("seqstore: corrupt header")
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	recBytes := int64(8 * seqLen)
	body := fi.Size() - headerSize
	if body%recBytes != 0 {
		f.Close()
		return nil, errors.New("seqstore: truncated record data")
	}
	return &Disk{f: f, seqLen: seqLen, count: int(body / recBytes), buf: make([]byte, recBytes)}, nil
}

// Append implements Store.
func (d *Disk) Append(values []float64) (int, error) {
	if len(values) != d.seqLen {
		return 0, ErrBadLength
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, v := range values {
		binary.LittleEndian.PutUint64(d.buf[8*i:], math.Float64bits(v))
	}
	off := int64(headerSize) + int64(d.count)*int64(len(d.buf))
	if _, err := d.f.WriteAt(d.buf, off); err != nil {
		return 0, fmt.Errorf("seqstore: append: %w", err)
	}
	id := d.count
	d.count++
	return id, nil
}

// Get implements Store.
func (d *Disk) Get(id int) ([]float64, error) {
	dst := make([]float64, d.seqLen)
	if err := d.GetInto(id, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// GetInto implements Store.
func (d *Disk) GetInto(id int, dst []float64) error {
	if len(dst) != d.seqLen {
		return ErrBadLength
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reads++
	if id < 0 || id >= d.count {
		return ErrNotFound
	}
	off := int64(headerSize) + int64(id)*int64(len(d.buf))
	if _, err := d.f.ReadAt(d.buf, off); err != nil {
		return fmt.Errorf("seqstore: read record %d: %w", id, err)
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.buf[8*i:]))
	}
	return nil
}

// Len implements Store.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// SeqLen implements Store.
func (d *Disk) SeqLen() int { return d.seqLen }

// Reads implements Store.
func (d *Disk) Reads() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads
}

// ResetReads implements Store.
func (d *Disk) ResetReads() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reads = 0
}

// Close implements Store.
func (d *Disk) Close() error { return d.f.Close() }

// Sync flushes buffered writes to stable storage.
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Sync()
}

var (
	_ Store = (*Memory)(nil)
	_ Store = (*Disk)(nil)
)
