// Package seqstore stores uncompressed time series as fixed-length binary
// records, either on disk or in memory. The similarity-search experiments
// need it to model the paper's setup faithfully: the index holds only
// compressed features, and every candidate that survives pruning costs a
// random read of the full sequence ("the full representation of the
// remaining objects is retrieved from the disk", §4.1; fig. 23 separates
// disk-resident from memory-resident storage).
//
// The disk backend is a flat file: an 8-byte header (magic + record length)
// followed by records of n float64 values each, addressed by sequence ID.
//
// Concurrency: both backends support a single writer (Append/Truncate)
// running concurrently with any number of readers (Get/GetInto/Len/Reads).
// Readers never take an exclusive lock — Memory reads run under an RLock
// and Disk reads use positioned ReadAt with pooled buffers — so parallel
// search workers are not serialized on store I/O. Concurrent writers must
// be serialized by the caller (core.Engine holds its write lock across
// mutation).
package seqstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
)

// Store is random-access storage of equal-length float64 sequences by ID.
type Store interface {
	// Append adds a sequence and returns its ID (IDs are dense from 0).
	Append(values []float64) (int, error)
	// Get reads sequence id into a freshly allocated slice.
	Get(id int) ([]float64, error)
	// GetInto reads sequence id into dst (must have length SeqLen).
	GetInto(id int, dst []float64) error
	// Len returns the number of stored sequences.
	Len() int
	// SeqLen returns the per-sequence length.
	SeqLen() int
	// Truncate discards every sequence with ID >= n, restoring the store
	// to exactly n records. It is the rollback primitive for multi-step
	// inserts (core.Engine.Add appends the row first and truncates it back
	// out if a later step fails). Truncating beyond Len is an error.
	Truncate(n int) error
	// Reads returns the number of Get/GetInto calls served (the random-I/O
	// counter the experiments report).
	Reads() int64
	// ResetReads zeroes the read counter.
	ResetReads()
	// Close releases resources.
	Close() error
}

// ErrNotFound is returned for out-of-range sequence IDs.
var ErrNotFound = errors.New("seqstore: sequence not found")

// RowReader is an optional zero-copy read fast path: Row returns a
// read-only view of the stored sequence without copying it out. Only
// backends whose rows are stable in memory implement it (Memory rows are
// immutable once appended); the disk backend does not — it must read into a
// buffer anyway. Resolve it through Rows, never by direct type assertion:
// instrumentation wrappers forward Row unconditionally, and Rows checks the
// base backend actually supports it.
type RowReader interface {
	// Row returns the stored sequence as a read-only view. Callers must not
	// modify or retain it past the surrounding read-locked section.
	Row(id int) ([]float64, error)
}

// Rows resolves s's zero-copy row reader, unwrapping instrumentation
// wrappers (via Unwrap) to check that the base backend supports row views.
// ok=false means callers should fall back to GetInto.
func Rows(s Store) (RowReader, bool) {
	rr, ok := s.(RowReader)
	if !ok {
		return nil, false
	}
	base := s
	for {
		u, uok := base.(interface{ Unwrap() Store })
		if !uok {
			break
		}
		base = u.Unwrap()
	}
	if _, bok := base.(RowReader); !bok {
		return nil, false
	}
	return rr, true
}

// ErrBadLength is returned when a sequence's length does not match the store.
var ErrBadLength = errors.New("seqstore: sequence length mismatch")

// ErrBadTruncate is returned when Truncate is asked to grow the store or
// shrink it below zero records.
var ErrBadTruncate = errors.New("seqstore: truncate out of range")

// ---------------------------------------------------------------------------
// In-memory backend

// Memory is the in-memory Store backend.
type Memory struct {
	mu     sync.RWMutex
	seqLen int
	data   [][]float64
	reads  atomic.Int64
}

// NewMemory creates an in-memory store for sequences of length seqLen.
func NewMemory(seqLen int) (*Memory, error) {
	if seqLen <= 0 {
		return nil, errors.New("seqstore: sequence length must be positive")
	}
	return &Memory{seqLen: seqLen}, nil
}

// Append implements Store.
func (m *Memory) Append(values []float64) (int, error) {
	if len(values) != m.seqLen {
		return 0, ErrBadLength
	}
	cp := make([]float64, len(values))
	copy(cp, values)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = append(m.data, cp)
	return len(m.data) - 1, nil
}

// Get implements Store.
func (m *Memory) Get(id int) ([]float64, error) {
	dst := make([]float64, m.seqLen)
	if err := m.GetInto(id, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// Row implements RowReader: the returned slice is the stored row itself,
// valid indefinitely for reading (rows are copied on Append and never
// mutated; Truncate drops references but cannot recycle the backing array).
func (m *Memory) Row(id int) ([]float64, error) {
	m.reads.Add(1)
	m.mu.RLock()
	defer m.mu.RUnlock()
	if id < 0 || id >= len(m.data) {
		return nil, ErrNotFound
	}
	return m.data[id], nil
}

// GetInto implements Store.
func (m *Memory) GetInto(id int, dst []float64) error {
	if len(dst) != m.seqLen {
		return ErrBadLength
	}
	m.reads.Add(1)
	m.mu.RLock()
	if id < 0 || id >= len(m.data) {
		m.mu.RUnlock()
		return ErrNotFound
	}
	src := m.data[id]
	m.mu.RUnlock()
	// src is immutable once appended (Append stores a private copy), so the
	// copy may run outside the lock.
	copy(dst, src)
	return nil
}

// Len implements Store.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data)
}

// SeqLen implements Store.
func (m *Memory) SeqLen() int { return m.seqLen }

// Truncate implements Store.
func (m *Memory) Truncate(n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 0 || n > len(m.data) {
		return ErrBadTruncate
	}
	for i := n; i < len(m.data); i++ {
		m.data[i] = nil
	}
	m.data = m.data[:n]
	return nil
}

// Reads implements Store.
func (m *Memory) Reads() int64 { return m.reads.Load() }

// ResetReads implements Store.
func (m *Memory) ResetReads() { m.reads.Store(0) }

// Close implements Store.
func (m *Memory) Close() error { return nil }

// ---------------------------------------------------------------------------
// Disk backend

const (
	magic      = uint32(0x53514c47) // "SQLG"
	headerSize = 8                  // magic + uint32 record length
)

// Disk is the file-backed Store backend. Reads are positioned (ReadAt) on
// pooled scratch buffers and never block each other; the record count is
// published atomically only after the record's bytes are fully written, so
// a concurrent reader can never observe a half-written row.
type Disk struct {
	mu     sync.Mutex // serializes Append/Truncate
	f      *os.File
	seqLen int
	count  atomic.Int64
	reads  atomic.Int64
	bufs   sync.Pool // *[]byte record scratch buffers
}

func newDisk(f *os.File, seqLen, count int) *Disk {
	d := &Disk{f: f, seqLen: seqLen}
	d.count.Store(int64(count))
	recBytes := 8 * seqLen
	d.bufs.New = func() any {
		b := make([]byte, recBytes)
		return &b
	}
	return d
}

// Create creates (or truncates) a disk store at path for sequences of
// length seqLen.
func Create(path string, seqLen int) (*Disk, error) {
	if seqLen <= 0 {
		return nil, errors.New("seqstore: sequence length must be positive")
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("seqstore: create: %w", err)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(seqLen))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("seqstore: write header: %w", err)
	}
	return newDisk(f, seqLen, 0), nil
}

// Open opens an existing disk store.
func Open(path string) (*Disk, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("seqstore: open: %w", err)
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("seqstore: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magic {
		f.Close()
		return nil, errors.New("seqstore: bad magic")
	}
	seqLen := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if seqLen <= 0 {
		f.Close()
		return nil, errors.New("seqstore: corrupt header")
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	recBytes := int64(8 * seqLen)
	body := fi.Size() - headerSize
	if body%recBytes != 0 {
		f.Close()
		return nil, errors.New("seqstore: truncated record data")
	}
	return newDisk(f, seqLen, int(body/recBytes)), nil
}

// Append implements Store.
func (d *Disk) Append(values []float64) (int, error) {
	if len(values) != d.seqLen {
		return 0, ErrBadLength
	}
	bp := d.bufs.Get().(*[]byte)
	buf := *bp
	for i, v := range values {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	id := int(d.count.Load())
	off := int64(headerSize) + int64(id)*int64(len(buf))
	if _, err := d.f.WriteAt(buf, off); err != nil {
		d.bufs.Put(bp)
		return 0, fmt.Errorf("seqstore: append: %w", err)
	}
	d.bufs.Put(bp)
	// Publish the row only after its bytes are durably in the file so a
	// concurrent reader racing on id never sees a partial record.
	d.count.Store(int64(id) + 1)
	return id, nil
}

// Get implements Store.
func (d *Disk) Get(id int) ([]float64, error) {
	dst := make([]float64, d.seqLen)
	if err := d.GetInto(id, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// GetInto implements Store.
func (d *Disk) GetInto(id int, dst []float64) error {
	if len(dst) != d.seqLen {
		return ErrBadLength
	}
	d.reads.Add(1)
	if id < 0 || id >= int(d.count.Load()) {
		return ErrNotFound
	}
	bp := d.bufs.Get().(*[]byte)
	defer d.bufs.Put(bp)
	buf := *bp
	off := int64(headerSize) + int64(id)*int64(len(buf))
	if _, err := d.f.ReadAt(buf, off); err != nil {
		return fmt.Errorf("seqstore: read record %d: %w", id, err)
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

// Len implements Store.
func (d *Disk) Len() int { return int(d.count.Load()) }

// SeqLen implements Store.
func (d *Disk) SeqLen() int { return d.seqLen }

// Truncate implements Store.
func (d *Disk) Truncate(n int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := int(d.count.Load())
	if n < 0 || n > cur {
		return ErrBadTruncate
	}
	if n == cur {
		return nil
	}
	// Unpublish the rows before shrinking the file so no reader holds an
	// ID that points past EOF mid-truncate.
	d.count.Store(int64(n))
	size := int64(headerSize) + int64(n)*int64(8*d.seqLen)
	if err := d.f.Truncate(size); err != nil {
		return fmt.Errorf("seqstore: truncate: %w", err)
	}
	return nil
}

// Reads implements Store.
func (d *Disk) Reads() int64 { return d.reads.Load() }

// ResetReads implements Store.
func (d *Disk) ResetReads() { d.reads.Store(0) }

// Close implements Store.
func (d *Disk) Close() error { return d.f.Close() }

// Sync flushes buffered writes to stable storage.
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Sync()
}

var (
	_ Store = (*Memory)(nil)
	_ Store = (*Disk)(nil)
)
