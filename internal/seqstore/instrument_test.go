package seqstore

import (
	"errors"
	"testing"

	"repro/internal/obs"
)

// failingStore errors on every operation, to exercise the error paths of
// the instrumented wrapper.
type failingStore struct {
	seqLen int
}

var errBroken = errors.New("broken store")

func (f *failingStore) Append([]float64) (int, error) { return 0, errBroken }
func (f *failingStore) Get(int) ([]float64, error)    { return nil, errBroken }
func (f *failingStore) GetInto(int, []float64) error  { return errBroken }
func (f *failingStore) Len() int                      { return 0 }
func (f *failingStore) Truncate(int) error            { return errBroken }
func (f *failingStore) SeqLen() int                   { return f.seqLen }
func (f *failingStore) Close() error                  { return nil }
func (f *failingStore) Reads() int64                  { return 0 }
func (f *failingStore) ResetReads()                   {}

func counterVal(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	return reg.Counter(name, "").Value()
}

func TestInstrumentCountsTraffic(t *testing.T) {
	const seqLen = 4
	mem, err := NewMemory(seqLen)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := Instrument(mem, reg)

	id, err := s.Append([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(id); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, seqLen)
	if err := s.GetInto(id, buf); err != nil {
		t.Fatal(err)
	}

	for name, want := range map[string]int64{
		"seqstore_appends_total":     1,
		"seqstore_write_bytes_total": 8 * seqLen,
		"seqstore_reads_total":       2, // Get + GetInto
		"seqstore_read_bytes_total":  2 * 8 * seqLen,
		"seqstore_errors_total":      0,
	} {
		if got := counterVal(t, reg, name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestInstrumentCountsErrors(t *testing.T) {
	reg := obs.NewRegistry()
	s := Instrument(&failingStore{seqLen: 4}, reg)

	if _, err := s.Append([]float64{1}); !errors.Is(err, errBroken) {
		t.Errorf("Append error = %v", err)
	}
	if _, err := s.Get(0); !errors.Is(err, errBroken) {
		t.Errorf("Get error = %v", err)
	}
	if err := s.GetInto(0, nil); !errors.Is(err, errBroken) {
		t.Errorf("GetInto error = %v", err)
	}

	if got := counterVal(t, reg, "seqstore_errors_total"); got != 3 {
		t.Errorf("seqstore_errors_total = %d, want 3", got)
	}
	// Failed operations must not inflate the traffic counters.
	for _, name := range []string{
		"seqstore_appends_total", "seqstore_write_bytes_total",
		"seqstore_reads_total", "seqstore_read_bytes_total",
	} {
		if got := counterVal(t, reg, name); got != 0 {
			t.Errorf("%s = %d after errors, want 0", name, got)
		}
	}
	// Errors on an in-range memory store also count: out-of-range reads.
	mem, err := NewMemory(4)
	if err != nil {
		t.Fatal(err)
	}
	ms := Instrument(mem, reg)
	if _, err := ms.Get(99); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if got := counterVal(t, reg, "seqstore_errors_total"); got != 4 {
		t.Errorf("seqstore_errors_total = %d, want 4", got)
	}
}

func TestInstrumentNilRegistryPassthrough(t *testing.T) {
	mem, err := NewMemory(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := Instrument(mem, nil); got != Store(mem) {
		t.Errorf("nil registry should return the store unchanged, got %T", got)
	}
}

func TestInstrumentUnwrap(t *testing.T) {
	mem, err := NewMemory(2)
	if err != nil {
		t.Fatal(err)
	}
	s := Instrument(mem, obs.NewRegistry())
	u, ok := s.(interface{ Unwrap() Store })
	if !ok {
		t.Fatal("instrumented store has no Unwrap")
	}
	if u.Unwrap() != Store(mem) {
		t.Error("Unwrap did not return the backend")
	}
}
