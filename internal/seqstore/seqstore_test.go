package seqstore

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func testBackends(t *testing.T, seqLen int) map[string]Store {
	t.Helper()
	mem, err := NewMemory(seqLen)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := Create(filepath.Join(t.TempDir(), "seq.bin"), seqLen)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk.Close() })
	return map[string]Store{"memory": mem, "disk": disk}
}

func TestAppendGetRoundTrip(t *testing.T) {
	for name, st := range testBackends(t, 16) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			var want [][]float64
			for i := 0; i < 20; i++ {
				v := make([]float64, 16)
				for j := range v {
					v[j] = rng.NormFloat64()
				}
				id, err := st.Append(v)
				if err != nil {
					t.Fatal(err)
				}
				if id != i {
					t.Fatalf("id = %d, want %d", id, i)
				}
				want = append(want, v)
			}
			if st.Len() != 20 {
				t.Fatalf("Len = %d", st.Len())
			}
			for i, w := range want {
				got, err := st.Get(i)
				if err != nil {
					t.Fatal(err)
				}
				for j := range w {
					if got[j] != w[j] {
						t.Fatalf("seq %d elem %d: %v != %v", i, j, got[j], w[j])
					}
				}
			}
		})
	}
}

func TestAppendCopiesInput(t *testing.T) {
	for name, st := range testBackends(t, 4) {
		t.Run(name, func(t *testing.T) {
			v := []float64{1, 2, 3, 4}
			id, err := st.Append(v)
			if err != nil {
				t.Fatal(err)
			}
			v[0] = 99
			got, err := st.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != 1 {
				t.Error("store aliased caller's slice")
			}
		})
	}
}

func TestErrors(t *testing.T) {
	for name, st := range testBackends(t, 8) {
		t.Run(name, func(t *testing.T) {
			if _, err := st.Append(make([]float64, 7)); err != ErrBadLength {
				t.Error("expected ErrBadLength on append")
			}
			if _, err := st.Get(0); err != ErrNotFound {
				t.Error("expected ErrNotFound for empty store")
			}
			if _, err := st.Append(make([]float64, 8)); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Get(-1); err != ErrNotFound {
				t.Error("expected ErrNotFound for negative id")
			}
			if _, err := st.Get(5); err != ErrNotFound {
				t.Error("expected ErrNotFound past end")
			}
			if err := st.GetInto(0, make([]float64, 3)); err != ErrBadLength {
				t.Error("expected ErrBadLength on GetInto")
			}
		})
	}
	if _, err := NewMemory(0); err == nil {
		t.Error("expected error for zero seqLen")
	}
	if _, err := Create(filepath.Join(t.TempDir(), "x"), -1); err == nil {
		t.Error("expected error for negative seqLen")
	}
}

func TestReadCounter(t *testing.T) {
	for name, st := range testBackends(t, 4) {
		t.Run(name, func(t *testing.T) {
			if _, err := st.Append(make([]float64, 4)); err != nil {
				t.Fatal(err)
			}
			st.ResetReads()
			for i := 0; i < 7; i++ {
				if _, err := st.Get(0); err != nil {
					t.Fatal(err)
				}
			}
			if st.Reads() != 7 {
				t.Errorf("Reads = %d, want 7", st.Reads())
			}
			st.ResetReads()
			if st.Reads() != 0 {
				t.Error("ResetReads failed")
			}
		})
	}
}

func TestDiskReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seq.bin")
	d, err := Create(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := d.Append(v); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 || re.SeqLen() != 8 {
		t.Fatalf("reopened Len/SeqLen = %d/%d", re.Len(), re.SeqLen())
	}
	got, err := re.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("elem %d: %v != %v", i, got[i], v[i])
		}
	}
	// Appending after reopen must continue the ID sequence.
	id, err := re.Append(v)
	if err != nil || id != 1 {
		t.Fatalf("append after reopen: id=%d err=%v", id, err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, []byte("notmagicatall"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Error("expected bad-magic error")
	}
	if _, err := Open(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("expected open error for missing file")
	}
	// Truncated record data.
	trunc := filepath.Join(dir, "trunc.bin")
	d, err := Create(trunc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(make([]float64, 4)); err != nil {
		t.Fatal(err)
	}
	d.Close()
	fi, _ := os.Stat(trunc)
	if err := os.Truncate(trunc, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(trunc); err == nil {
		t.Error("expected truncated-data error")
	}
}

// Property: memory and disk backends behave identically for any workload.
func TestBackendEquivalenceProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw)%40
		rng := rand.New(rand.NewSource(seed))
		mem, _ := NewMemory(8)
		disk, err := Create(filepath.Join(t.TempDir(), "p.bin"), 8)
		if err != nil {
			return false
		}
		defer disk.Close()
		for i := 0; i < n; i++ {
			v := make([]float64, 8)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			im, _ := mem.Append(v)
			id, _ := disk.Append(v)
			if im != id {
				return false
			}
		}
		for i := 0; i < n; i++ {
			a, err1 := mem.Get(i)
			b, err2 := disk.Get(i)
			if err1 != nil || err2 != nil {
				return false
			}
			for j := range a {
				if a[j] != b[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReads(t *testing.T) {
	st, err := NewMemory(32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		v := make([]float64, 32)
		v[0] = float64(i)
		if _, err := st.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v, err := st.Get(i % 10)
				if err != nil || v[0] != float64(i%10) {
					t.Errorf("concurrent get: %v %v", v, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkDiskGet1024(b *testing.B) {
	d, err := Create(filepath.Join(b.TempDir(), "bench.bin"), 1024)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	v := make([]float64, 1024)
	for i := 0; i < 256; i++ {
		if _, err := d.Append(v); err != nil {
			b.Fatal(err)
		}
	}
	dst := make([]float64, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.GetInto(i%256, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemoryGet1024(b *testing.B) {
	m, _ := NewMemory(1024)
	v := make([]float64, 1024)
	for i := 0; i < 256; i++ {
		if _, err := m.Append(v); err != nil {
			b.Fatal(err)
		}
	}
	dst := make([]float64, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.GetInto(i%256, dst); err != nil {
			b.Fatal(err)
		}
	}
}
