package seqstore

import (
	"errors"

	"repro/internal/obs"
)

// instrumented mirrors every Store operation into obs counters while
// delegating to the wrapped backend. Counts are in addition to the
// backend's own Reads() accounting (which the experiments reset per run;
// the obs counters are cumulative process-lifetime totals).
type instrumented struct {
	Store
	reads      *obs.Counter
	readBytes  *obs.Counter
	appends    *obs.Counter
	writeBytes *obs.Counter
	errors     *obs.Counter
}

// Instrument wraps a store so its traffic shows up in reg under
// seqstore_reads_total, seqstore_read_bytes_total, seqstore_appends_total,
// seqstore_write_bytes_total and seqstore_errors_total. A nil registry
// returns the store unchanged.
func Instrument(s Store, reg *obs.Registry) Store {
	if reg == nil {
		return s
	}
	return &instrumented{
		Store:      s,
		reads:      reg.Counter("seqstore_reads_total", "sequence records fetched from the store"),
		readBytes:  reg.Counter("seqstore_read_bytes_total", "bytes of sequence data read (8 bytes per value)"),
		appends:    reg.Counter("seqstore_appends_total", "sequence records appended to the store"),
		writeBytes: reg.Counter("seqstore_write_bytes_total", "bytes of sequence data written (8 bytes per value)"),
		errors:     reg.Counter("seqstore_errors_total", "store operations that returned an error"),
	}
}

func (s *instrumented) recordBytes() int64 { return 8 * int64(s.Store.SeqLen()) }

// Append implements Store.
func (s *instrumented) Append(values []float64) (int, error) {
	id, err := s.Store.Append(values)
	if err == nil {
		s.appends.Inc()
		s.writeBytes.Add(s.recordBytes())
	} else {
		s.errors.Inc()
	}
	return id, err
}

// Get implements Store.
func (s *instrumented) Get(id int) ([]float64, error) {
	v, err := s.Store.Get(id)
	if err == nil {
		s.reads.Inc()
		s.readBytes.Add(s.recordBytes())
	} else {
		s.errors.Inc()
	}
	return v, err
}

// GetInto implements Store.
func (s *instrumented) GetInto(id int, dst []float64) error {
	err := s.Store.GetInto(id, dst)
	if err == nil {
		s.reads.Inc()
		s.readBytes.Add(s.recordBytes())
	} else {
		s.errors.Inc()
	}
	return err
}

// Truncate implements Store.
func (s *instrumented) Truncate(n int) error {
	err := s.Store.Truncate(n)
	if err != nil {
		s.errors.Inc()
	}
	return err
}

// Row implements RowReader by delegating to the backend, mirroring the
// read into the same counters as Get/GetInto. Callers reach it through
// Rows, which verifies the backend supports row views first.
func (s *instrumented) Row(id int) ([]float64, error) {
	rr, ok := s.Store.(RowReader)
	if !ok {
		s.errors.Inc()
		return nil, errors.New("seqstore: backend does not expose rows")
	}
	row, err := rr.Row(id)
	if err == nil {
		s.reads.Inc()
		s.readBytes.Add(s.recordBytes())
	} else {
		s.errors.Inc()
	}
	return row, err
}

// Unwrap returns the underlying backend (for callers needing a concrete
// *Disk, e.g. to Sync).
func (s *instrumented) Unwrap() Store { return s.Store }

var _ Store = (*instrumented)(nil)
