package seqstore

import "context"

// ctxStore wraps a Store so every read observes a request context. The
// engine installs it around the store it hands to a search, making the
// expensive operations — the random reads of full sequences during
// refinement, in-memory or on disk — fail fast with the context's error
// once the caller has hung up, even between the search's own amortized
// lifecycle checks.
type ctxStore struct {
	Store
	ctx context.Context
}

// WithContext returns a view of s whose Get/GetInto fail with ctx.Err()
// once ctx is done. When ctx can never be cancelled (nil, Background, ...)
// s is returned unwrapped, so ungated paths pay nothing.
func WithContext(ctx context.Context, s Store) Store {
	if ctx == nil || ctx.Done() == nil {
		return s
	}
	return ctxStore{Store: s, ctx: ctx}
}

// Get implements Store.
func (c ctxStore) Get(id int) ([]float64, error) {
	if err := c.ctx.Err(); err != nil {
		return nil, err
	}
	return c.Store.Get(id)
}

// GetInto implements Store.
func (c ctxStore) GetInto(id int, dst []float64) error {
	if err := c.ctx.Err(); err != nil {
		return err
	}
	return c.Store.GetInto(id, dst)
}
