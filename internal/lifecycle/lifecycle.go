// Package lifecycle is the per-request enforcement point for cancellation
// and work budgets. Every search family (vptree traversal, MVP-tree
// traversal, sharded linear scan, DTW cascade, burst-overlap probes) drives
// its inner loop through a *Gate, so one package decides uniformly when a
// query must stop — and whether stopping is an abort (the caller hung up:
// return ctx.Err()) or a graceful truncation (a budget ran out: return the
// best-so-far answer flagged Truncated).
//
// The distinction follows Echihabi et al. (VLDB 2020): time/work budgets
// trade answer quality for latency and must yield a usable partial answer,
// while cancellation means nobody is waiting for the result at all.
//
// Gates are deliberately cheap: context and deadline checks are amortized
// over checkStride accounting events, so the per-node overhead of a gated
// search is an integer decrement. A nil *Gate is valid everywhere and means
// "unlimited" — zero overhead on legacy paths.
package lifecycle

import (
	"context"
	"math"
	"time"
)

// Limits bounds the work a single request may perform. The zero value means
// unlimited.
type Limits struct {
	// Deadline is the absolute wall-clock instant after which the search
	// truncates (zero = none). Deadline expiry is graceful: the search
	// returns its best-so-far answer, it does not error.
	Deadline time.Time
	// MaxNodes caps accounting units of traversal/scan work: tree nodes
	// visited, rows scanned, bursts probed (0 = unlimited).
	MaxNodes int
	// MaxExact caps exact distance computations during refinement
	// (0 = unlimited). Unlike Deadline/MaxNodes truncation, this cap is
	// never exceeded, even by the post-truncation refinement grace.
	MaxExact int
	// Epsilon is the (1+ε)-approximation slack: a search may discard any
	// object it can prove is at distance ≥ bound/(1+ε) from the query, where
	// bound would have been the exact pruning radius. 0 = exact. Every
	// ε-motivated exclusion is recorded via MarkRelaxed so the gate's
	// BoundFloor stays a sound lower bound on everything discarded.
	Epsilon float64
	// Delta is the sampled-stop fraction of the δ-ε mode: refinement may
	// skip up to a δ fraction of the tail of its lb-sorted candidate list
	// (never cutting below k candidates). Because candidates are processed
	// in increasing-lower-bound order, the skipped tail still yields a
	// proven BoundFloor. 0 = refine everything the bounds admit.
	Delta float64
	// NProbe is the ng-approximate leaf budget: the traversal stops after
	// visiting this many leaf units (tree leaves, scanned rows). Unlike
	// MaxNodes truncation the stop is an *approximation* decision — the
	// answer is flagged Approximate, not Truncated, and the bound floor
	// drops to 0 (unexplored leaves carry no proven bound). 0 = unlimited.
	NProbe int
}

// zero reports whether the limits impose no bound at all.
func (l Limits) zero() bool {
	return l.Deadline.IsZero() && l.MaxNodes <= 0 && l.MaxExact <= 0 &&
		l.Epsilon <= 0 && l.Delta <= 0 && l.NProbe <= 0
}

// checkStride is how many accounting events pass between context/deadline
// checks. An expired context therefore aborts within checkStride node
// visits, and a deadline overshoots by at most checkStride units of work.
const checkStride = 8

// Gate enforces Limits and context cancellation for one request. It is NOT
// safe for concurrent use: each worker of a sharded scan gets its own child
// gate via Split. All methods are nil-safe; a nil gate admits everything.
type Gate struct {
	ctx       context.Context // nil ⇒ never cancelled
	deadline  time.Time
	maxNodes  int
	maxExact  int
	nodes     int
	exact     int
	credit    int // events until the next ctx/deadline check
	grace     int // Exact allowances that ignore truncation (see Grace)
	truncated bool
	// Approximation spec + accounting (see Limits.Epsilon/Delta/NProbe).
	epsilon    float64
	delta      float64
	nprobe     int
	leaves     int     // leaf units visited against nprobe
	ngStopped  bool    // sticky: the leaf budget stopped the traversal
	approx     bool    // any approximation decision was taken
	boundFloor float64 // min proven lower bound over everything discarded
}

// NewGate builds a gate for one request. It returns nil — the unlimited
// gate — when ctx can never be cancelled and lim is zero, so ungated legacy
// paths stay allocation-free. The first accounting event always checks the
// context, which is what makes an already-expired context abort in O(1)
// node visits even without an entry-point pre-check.
func NewGate(ctx context.Context, lim Limits) *Gate {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	if ctx == nil && lim.zero() {
		return nil
	}
	return &Gate{
		ctx:        ctx,
		deadline:   lim.Deadline,
		maxNodes:   lim.MaxNodes,
		maxExact:   lim.MaxExact,
		epsilon:    lim.Epsilon,
		delta:      lim.Delta,
		nprobe:     lim.NProbe,
		boundFloor: math.Inf(1),
		credit:     1, // check on the very first event
	}
}

// Visit accounts one unit of traversal/scan work (a tree node, a scanned
// row, a probed burst). It returns (false, err) when the request's context
// is done — abort and propagate err — and (false, nil) when a budget is
// exhausted — stop and return the best-so-far answer (Truncated reports
// true afterwards).
func (g *Gate) Visit() (bool, error) {
	if g == nil {
		return true, nil
	}
	if g.truncated || g.ngStopped {
		return false, nil
	}
	if g.maxNodes > 0 && g.nodes >= g.maxNodes {
		g.truncated = true
		return false, nil
	}
	g.nodes++
	return g.tick()
}

// Exact accounts one exact distance computation during refinement. The
// return contract matches Visit. While a Grace allowance is outstanding,
// budget truncation is ignored (cancellation is not) so a truncated
// traversal can still refine a bounded number of candidates; the explicit
// MaxExact cap always wins over grace.
func (g *Gate) Exact() (bool, error) {
	if g == nil {
		return true, nil
	}
	if g.maxExact > 0 && g.exact >= g.maxExact {
		g.truncated = true
		return false, nil
	}
	g.exact++
	if g.grace > 0 {
		g.grace--
		if g.ctx != nil {
			if err := g.ctx.Err(); err != nil {
				return false, err
			}
		}
		return true, nil
	}
	if g.truncated {
		return false, nil
	}
	return g.tick()
}

// tick runs the amortized context/deadline check.
func (g *Gate) tick() (bool, error) {
	g.credit--
	if g.credit > 0 {
		return true, nil
	}
	g.credit = checkStride
	if g.ctx != nil {
		if err := g.ctx.Err(); err != nil {
			return false, err
		}
	}
	if !g.deadline.IsZero() && time.Now().After(g.deadline) {
		g.truncated = true
		return false, nil
	}
	return true, nil
}

// Check runs an immediate context check (no work accounting, no stride).
// Entry points call it before taking locks so an already-expired context
// never reaches a search at all.
func (g *Gate) Check() error {
	if g == nil || g.ctx == nil {
		return nil
	}
	return g.ctx.Err()
}

// Grace grants n further Exact allowances that ignore Deadline/MaxNodes
// truncation. A search whose traversal truncated calls Grace(k) before
// refinement so the caller receives up to k genuinely refined best-so-far
// neighbors instead of an empty answer; the overrun is bounded by k exact
// distances. Cancellation and MaxExact still apply during grace.
func (g *Gate) Grace(n int) {
	if g == nil || n <= 0 {
		return
	}
	g.grace += n
}

// Truncated reports whether any budget (deadline, node, or exact-distance
// cap) stopped the search early. It never reports true for cancellation —
// nor for an ng-approximate leaf-budget stop, which is an approximation
// decision reported via Approximate instead.
func (g *Gate) Truncated() bool { return g != nil && g.truncated }

// Epsilon returns the request's (1+ε)-approximation slack (0 on the nil
// gate and on exact requests).
func (g *Gate) Epsilon() float64 {
	if g == nil {
		return 0
	}
	return g.epsilon
}

// Relax shrinks a pruning radius by the gate's (1+ε) factor: a search may
// discard any object it can prove is at distance ≥ Relax(bound), because the
// answer it keeps is then within (1+ε) of anything discarded. With ε = 0 (or
// a nil gate) the radius is returned unchanged, bit for bit — the exact path
// is byte-identical by construction.
func (g *Gate) Relax(bound float64) float64 {
	if g == nil || g.epsilon <= 0 {
		return bound
	}
	return bound / (1 + g.epsilon)
}

// MarkRelaxed records one approximation decision: an object (or subtree, or
// candidate tail) was discarded that the exact search would have kept, with
// floor a proven lower bound on its true distance to the query. The gate's
// BoundFloor — the minimum over all such floors — is what makes the reported
// per-result BoundGap a sound upper bound on the true error: every discarded
// object is provably at distance ≥ BoundFloor.
func (g *Gate) MarkRelaxed(floor float64) {
	if g == nil {
		return
	}
	if floor < 0 {
		floor = 0
	}
	g.approx = true
	if floor < g.boundFloor {
		g.boundFloor = floor
	}
}

// Leaf accounts one leaf unit (a tree leaf block, a scanned row) against the
// ng-approximate NProbe budget. When the budget is exhausted it returns
// false and stops the traversal like a truncation — but flags the search
// Approximate with a bound floor of 0 (unexplored leaves carry no proven
// bound) instead of Truncated. Refinement of already-collected candidates
// is unaffected. Always true on the nil gate or with NProbe = 0.
func (g *Gate) Leaf() bool {
	if g == nil || g.nprobe <= 0 {
		return true
	}
	if g.ngStopped {
		return false
	}
	if g.leaves >= g.nprobe {
		g.ngStopped = true
		g.MarkRelaxed(0)
		return false
	}
	g.leaves++
	return true
}

// DeltaCut resolves the δ sampled-stop rule for a refinement phase over n
// lb-sorted candidates: it returns how many candidates to actually refine —
// at least k (a full answer is always attempted) and at least (1−δ)·n. The
// caller must MarkRelaxed the first skipped candidate's lower bound, which
// (by the sort order) bounds the whole skipped tail. With δ = 0 it returns n.
func (g *Gate) DeltaCut(n, k int) int {
	if g == nil || g.delta <= 0 || n <= 0 {
		return n
	}
	cut := int(math.Ceil((1 - g.delta) * float64(n)))
	if cut < k {
		cut = k
	}
	if cut > n {
		cut = n
	}
	return cut
}

// Approximate reports whether any approximation decision (ε-relaxed prune,
// δ tail skip, ng leaf stop) was taken. It never reports true for an exact
// request, regardless of budgets.
func (g *Gate) Approximate() bool { return g != nil && g.approx }

// BoundFloor returns the smallest proven lower bound over every object an
// approximation decision discarded (+Inf when none was — the answer is then
// exact, budgets permitting; 0 after an ng leaf stop). The true k-NN
// distance at any rank is ≥ min(reported distance, BoundFloor), which is
// what makes BoundGap = dist/BoundFloor − 1 a sound error bound.
func (g *Gate) BoundFloor() float64 {
	if g == nil {
		return math.Inf(1)
	}
	return g.boundFloor
}

// Nodes returns the accounted traversal/scan units (0 on the nil gate).
func (g *Gate) Nodes() int {
	if g == nil {
		return 0
	}
	return g.nodes
}

// ExactDistances returns the accounted exact computations.
func (g *Gate) ExactDistances() int {
	if g == nil {
		return 0
	}
	return g.exact
}

// Split divides the remaining budget across n workers of a sharded scan,
// returning one child gate per worker (all nil when g is nil). Node and
// exact caps are split ceiling-wise so the aggregate work stays within
// roughly the requested budget; deadline and context are shared. Children
// are independent — merge their outcomes with Absorb.
func (g *Gate) Split(n int) []*Gate {
	if n < 1 {
		n = 1
	}
	kids := make([]*Gate, n)
	if g == nil {
		return kids
	}
	share := func(total, used int) int {
		if total <= 0 {
			return 0
		}
		rem := total - used
		if rem < 1 {
			rem = 1 // keep the cap meaningful: each child may do ≥1 unit
		}
		return (rem + n - 1) / n
	}
	for i := range kids {
		kids[i] = &Gate{
			ctx:        g.ctx,
			deadline:   g.deadline,
			maxNodes:   share(g.maxNodes, g.nodes),
			maxExact:   share(g.maxExact, g.exact),
			epsilon:    g.epsilon,
			delta:      g.delta,
			nprobe:     share(g.nprobe, g.leaves),
			boundFloor: math.Inf(1),
			credit:     1,
		}
	}
	return kids
}

// Absorb folds child gates (from Split) back into g: work counters are
// summed and truncation is sticky if any child truncated.
func (g *Gate) Absorb(children ...*Gate) {
	if g == nil {
		return
	}
	for _, c := range children {
		if c == nil {
			continue
		}
		g.nodes += c.nodes
		g.exact += c.exact
		g.leaves += c.leaves
		if c.truncated {
			g.truncated = true
		}
		if c.approx {
			g.approx = true
			if c.boundFloor < g.boundFloor {
				g.boundFloor = c.boundFloor
			}
		}
	}
}
