// Package lifecycle is the per-request enforcement point for cancellation
// and work budgets. Every search family (vptree traversal, MVP-tree
// traversal, sharded linear scan, DTW cascade, burst-overlap probes) drives
// its inner loop through a *Gate, so one package decides uniformly when a
// query must stop — and whether stopping is an abort (the caller hung up:
// return ctx.Err()) or a graceful truncation (a budget ran out: return the
// best-so-far answer flagged Truncated).
//
// The distinction follows Echihabi et al. (VLDB 2020): time/work budgets
// trade answer quality for latency and must yield a usable partial answer,
// while cancellation means nobody is waiting for the result at all.
//
// Gates are deliberately cheap: context and deadline checks are amortized
// over checkStride accounting events, so the per-node overhead of a gated
// search is an integer decrement. A nil *Gate is valid everywhere and means
// "unlimited" — zero overhead on legacy paths.
package lifecycle

import (
	"context"
	"time"
)

// Limits bounds the work a single request may perform. The zero value means
// unlimited.
type Limits struct {
	// Deadline is the absolute wall-clock instant after which the search
	// truncates (zero = none). Deadline expiry is graceful: the search
	// returns its best-so-far answer, it does not error.
	Deadline time.Time
	// MaxNodes caps accounting units of traversal/scan work: tree nodes
	// visited, rows scanned, bursts probed (0 = unlimited).
	MaxNodes int
	// MaxExact caps exact distance computations during refinement
	// (0 = unlimited). Unlike Deadline/MaxNodes truncation, this cap is
	// never exceeded, even by the post-truncation refinement grace.
	MaxExact int
}

// zero reports whether the limits impose no bound at all.
func (l Limits) zero() bool {
	return l.Deadline.IsZero() && l.MaxNodes <= 0 && l.MaxExact <= 0
}

// checkStride is how many accounting events pass between context/deadline
// checks. An expired context therefore aborts within checkStride node
// visits, and a deadline overshoots by at most checkStride units of work.
const checkStride = 8

// Gate enforces Limits and context cancellation for one request. It is NOT
// safe for concurrent use: each worker of a sharded scan gets its own child
// gate via Split. All methods are nil-safe; a nil gate admits everything.
type Gate struct {
	ctx       context.Context // nil ⇒ never cancelled
	deadline  time.Time
	maxNodes  int
	maxExact  int
	nodes     int
	exact     int
	credit    int // events until the next ctx/deadline check
	grace     int // Exact allowances that ignore truncation (see Grace)
	truncated bool
}

// NewGate builds a gate for one request. It returns nil — the unlimited
// gate — when ctx can never be cancelled and lim is zero, so ungated legacy
// paths stay allocation-free. The first accounting event always checks the
// context, which is what makes an already-expired context abort in O(1)
// node visits even without an entry-point pre-check.
func NewGate(ctx context.Context, lim Limits) *Gate {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	if ctx == nil && lim.zero() {
		return nil
	}
	return &Gate{
		ctx:      ctx,
		deadline: lim.Deadline,
		maxNodes: lim.MaxNodes,
		maxExact: lim.MaxExact,
		credit:   1, // check on the very first event
	}
}

// Visit accounts one unit of traversal/scan work (a tree node, a scanned
// row, a probed burst). It returns (false, err) when the request's context
// is done — abort and propagate err — and (false, nil) when a budget is
// exhausted — stop and return the best-so-far answer (Truncated reports
// true afterwards).
func (g *Gate) Visit() (bool, error) {
	if g == nil {
		return true, nil
	}
	if g.truncated {
		return false, nil
	}
	if g.maxNodes > 0 && g.nodes >= g.maxNodes {
		g.truncated = true
		return false, nil
	}
	g.nodes++
	return g.tick()
}

// Exact accounts one exact distance computation during refinement. The
// return contract matches Visit. While a Grace allowance is outstanding,
// budget truncation is ignored (cancellation is not) so a truncated
// traversal can still refine a bounded number of candidates; the explicit
// MaxExact cap always wins over grace.
func (g *Gate) Exact() (bool, error) {
	if g == nil {
		return true, nil
	}
	if g.maxExact > 0 && g.exact >= g.maxExact {
		g.truncated = true
		return false, nil
	}
	g.exact++
	if g.grace > 0 {
		g.grace--
		if g.ctx != nil {
			if err := g.ctx.Err(); err != nil {
				return false, err
			}
		}
		return true, nil
	}
	if g.truncated {
		return false, nil
	}
	return g.tick()
}

// tick runs the amortized context/deadline check.
func (g *Gate) tick() (bool, error) {
	g.credit--
	if g.credit > 0 {
		return true, nil
	}
	g.credit = checkStride
	if g.ctx != nil {
		if err := g.ctx.Err(); err != nil {
			return false, err
		}
	}
	if !g.deadline.IsZero() && time.Now().After(g.deadline) {
		g.truncated = true
		return false, nil
	}
	return true, nil
}

// Check runs an immediate context check (no work accounting, no stride).
// Entry points call it before taking locks so an already-expired context
// never reaches a search at all.
func (g *Gate) Check() error {
	if g == nil || g.ctx == nil {
		return nil
	}
	return g.ctx.Err()
}

// Grace grants n further Exact allowances that ignore Deadline/MaxNodes
// truncation. A search whose traversal truncated calls Grace(k) before
// refinement so the caller receives up to k genuinely refined best-so-far
// neighbors instead of an empty answer; the overrun is bounded by k exact
// distances. Cancellation and MaxExact still apply during grace.
func (g *Gate) Grace(n int) {
	if g == nil || n <= 0 {
		return
	}
	g.grace += n
}

// Truncated reports whether any budget (deadline, node, or exact-distance
// cap) stopped the search early. It never reports true for cancellation.
func (g *Gate) Truncated() bool { return g != nil && g.truncated }

// Nodes returns the accounted traversal/scan units (0 on the nil gate).
func (g *Gate) Nodes() int {
	if g == nil {
		return 0
	}
	return g.nodes
}

// ExactDistances returns the accounted exact computations.
func (g *Gate) ExactDistances() int {
	if g == nil {
		return 0
	}
	return g.exact
}

// Split divides the remaining budget across n workers of a sharded scan,
// returning one child gate per worker (all nil when g is nil). Node and
// exact caps are split ceiling-wise so the aggregate work stays within
// roughly the requested budget; deadline and context are shared. Children
// are independent — merge their outcomes with Absorb.
func (g *Gate) Split(n int) []*Gate {
	if n < 1 {
		n = 1
	}
	kids := make([]*Gate, n)
	if g == nil {
		return kids
	}
	share := func(total, used int) int {
		if total <= 0 {
			return 0
		}
		rem := total - used
		if rem < 1 {
			rem = 1 // keep the cap meaningful: each child may do ≥1 unit
		}
		return (rem + n - 1) / n
	}
	for i := range kids {
		kids[i] = &Gate{
			ctx:      g.ctx,
			deadline: g.deadline,
			maxNodes: share(g.maxNodes, g.nodes),
			maxExact: share(g.maxExact, g.exact),
			credit:   1,
		}
	}
	return kids
}

// Absorb folds child gates (from Split) back into g: work counters are
// summed and truncation is sticky if any child truncated.
func (g *Gate) Absorb(children ...*Gate) {
	if g == nil {
		return
	}
	for _, c := range children {
		if c == nil {
			continue
		}
		g.nodes += c.nodes
		g.exact += c.exact
		if c.truncated {
			g.truncated = true
		}
	}
}
