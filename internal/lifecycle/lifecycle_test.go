package lifecycle

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilGateAdmitsEverything(t *testing.T) {
	var g *Gate
	for i := 0; i < 1000; i++ {
		if ok, err := g.Visit(); !ok || err != nil {
			t.Fatalf("nil gate Visit = (%v, %v)", ok, err)
		}
		if ok, err := g.Exact(); !ok || err != nil {
			t.Fatalf("nil gate Exact = (%v, %v)", ok, err)
		}
	}
	if g.Truncated() {
		t.Fatal("nil gate reports truncated")
	}
	if err := g.Check(); err != nil {
		t.Fatalf("nil gate Check = %v", err)
	}
}

func TestNewGateReturnsNilWhenUnlimited(t *testing.T) {
	if g := NewGate(context.Background(), Limits{}); g != nil {
		t.Fatal("background ctx + zero limits should yield the nil gate")
	}
	if g := NewGate(nil, Limits{}); g != nil {
		t.Fatal("nil ctx + zero limits should yield the nil gate")
	}
	if g := NewGate(context.Background(), Limits{MaxNodes: 1}); g == nil {
		t.Fatal("MaxNodes limit must yield a real gate")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if g := NewGate(ctx, Limits{}); g == nil {
		t.Fatal("cancellable ctx must yield a real gate")
	}
}

func TestCancelledContextAbortsOnFirstVisit(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := NewGate(ctx, Limits{})
	ok, err := g.Visit()
	if ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("first Visit after cancel = (%v, %v), want (false, Canceled)", ok, err)
	}
	if g.Truncated() {
		t.Fatal("cancellation must not be reported as truncation")
	}
}

func TestCancellationDetectedWithinStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGate(ctx, Limits{})
	if ok, err := g.Visit(); !ok || err != nil {
		t.Fatalf("pre-cancel Visit = (%v, %v)", ok, err)
	}
	cancel()
	aborted := false
	for i := 0; i < checkStride+1; i++ {
		if _, err := g.Visit(); err != nil {
			aborted = true
			break
		}
	}
	if !aborted {
		t.Fatalf("cancellation not observed within %d visits", checkStride+1)
	}
}

func TestMaxNodesTruncates(t *testing.T) {
	g := NewGate(context.Background(), Limits{MaxNodes: 5})
	admitted := 0
	for i := 0; i < 20; i++ {
		ok, err := g.Visit()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if ok {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("admitted %d visits, want 5", admitted)
	}
	if !g.Truncated() {
		t.Fatal("gate should report truncated")
	}
}

func TestMaxExactTruncates(t *testing.T) {
	g := NewGate(context.Background(), Limits{MaxExact: 3})
	admitted := 0
	for i := 0; i < 10; i++ {
		ok, err := g.Exact()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if ok {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("admitted %d exact computations, want 3", admitted)
	}
	if !g.Truncated() {
		t.Fatal("gate should report truncated")
	}
}

func TestExpiredDeadlineTruncatesPromptly(t *testing.T) {
	g := NewGate(context.Background(), Limits{Deadline: time.Now().Add(-time.Second)})
	ok, err := g.Visit()
	if err != nil {
		t.Fatalf("deadline expiry must not error: %v", err)
	}
	if ok {
		t.Fatal("first Visit past the deadline should be refused")
	}
	if !g.Truncated() {
		t.Fatal("gate should report truncated")
	}
}

func TestGraceAllowsBoundedRefinementAfterTruncation(t *testing.T) {
	g := NewGate(context.Background(), Limits{MaxNodes: 1})
	g.Visit()
	g.Visit() // trips the node budget
	if !g.Truncated() {
		t.Fatal("setup: gate should be truncated")
	}
	if ok, _ := g.Exact(); ok {
		t.Fatal("Exact should be refused after truncation without grace")
	}
	g.Grace(2)
	for i := 0; i < 2; i++ {
		if ok, err := g.Exact(); !ok || err != nil {
			t.Fatalf("grace Exact %d = (%v, %v)", i, ok, err)
		}
	}
	if ok, _ := g.Exact(); ok {
		t.Fatal("Exact should be refused once grace is spent")
	}
}

func TestGraceDoesNotOverrideMaxExact(t *testing.T) {
	g := NewGate(context.Background(), Limits{MaxExact: 1})
	g.Exact()
	g.Grace(10)
	if ok, _ := g.Exact(); ok {
		t.Fatal("grace must not exceed the explicit MaxExact cap")
	}
}

func TestGraceStillObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGate(ctx, Limits{MaxNodes: 1})
	g.Visit()
	g.Visit()
	g.Grace(5)
	cancel()
	if ok, err := g.Exact(); ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("grace Exact after cancel = (%v, %v), want (false, Canceled)", ok, err)
	}
}

func TestSplitSharesBudgetAndAbsorbMerges(t *testing.T) {
	g := NewGate(context.Background(), Limits{MaxNodes: 10})
	kids := g.Split(4)
	if len(kids) != 4 {
		t.Fatalf("Split returned %d children", len(kids))
	}
	total := 0
	for _, k := range kids {
		for {
			ok, err := k.Visit()
			if err != nil {
				t.Fatalf("child Visit error: %v", err)
			}
			if !ok {
				break
			}
			total++
		}
	}
	// Ceiling split: each of 4 children gets ceil(10/4)=3, so 10..12 total.
	if total < 10 || total > 12 {
		t.Fatalf("children admitted %d visits, want 10..12", total)
	}
	g.Absorb(kids...)
	if !g.Truncated() {
		t.Fatal("parent should absorb child truncation")
	}
	if g.Nodes() != total {
		t.Fatalf("parent nodes = %d, want %d", g.Nodes(), total)
	}
}

func TestSplitOnNilGate(t *testing.T) {
	var g *Gate
	kids := g.Split(3)
	if len(kids) != 3 {
		t.Fatalf("Split on nil gate returned %d children", len(kids))
	}
	for _, k := range kids {
		if k != nil {
			t.Fatal("nil gate must split into nil children")
		}
		if ok, err := k.Visit(); !ok || err != nil {
			t.Fatalf("nil child Visit = (%v, %v)", ok, err)
		}
	}
	g.Absorb(kids...) // must not panic
}

func TestCheckReportsContextState(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGate(ctx, Limits{})
	if err := g.Check(); err != nil {
		t.Fatalf("Check before cancel = %v", err)
	}
	cancel()
	if err := g.Check(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Check after cancel = %v, want Canceled", err)
	}
}
