package periods

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/querylog"
)

func TestDetectErrors(t *testing.T) {
	if _, err := Detect([]float64{1, 2}, 1e-4); err == nil {
		t.Error("expected error for short input")
	}
	x := make([]float64, 64)
	if _, err := Detect(x, 0); err == nil {
		t.Error("expected error for p=0")
	}
	if _, err := Detect(x, 1); err == nil {
		t.Error("expected error for p=1")
	}
}

func TestFlatSeriesHasNoPeriods(t *testing.T) {
	x := make([]float64, 128)
	for i := range x {
		x[i] = 42
	}
	d, err := Detect(x, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Periods) != 0 {
		t.Errorf("flat series produced periods: %v", d.Periods)
	}
}

func TestPureSinusoidDetected(t *testing.T) {
	n := 512
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/16) + 0.1*math.Cos(2*math.Pi*float64(i)/7.11)
	}
	d, err := Detect(x, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Periods) == 0 {
		t.Fatal("no periods found for a pure sinusoid")
	}
	if math.Abs(d.Periods[0].Length-16) > 0.5 {
		t.Errorf("dominant period %v, want 16", d.Periods[0].Length)
	}
}

// Fig. 13 reproduction at the archetype level.
func TestCinemaPeriods(t *testing.T) {
	s := querylog.New(1).Exemplar(querylog.Cinema)
	d, err := Detect(s.Values, DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasPeriodNear(7, 0.2) {
		t.Errorf("cinema: weekly period not detected; top: %v", d.Top(5))
	}
	if !d.HasPeriodNear(3.5, 0.1) {
		t.Errorf("cinema: 3.5-day harmonic not detected (fig. 13 P2); top: %v", d.Top(5))
	}
}

func TestFullMoonPeriods(t *testing.T) {
	s := querylog.New(2).Exemplar(querylog.FullMoon)
	d, err := Detect(s.Values, DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasPeriodNear(29.53, 1.5) {
		t.Errorf("full moon: lunar period not detected; top: %v", d.Top(5))
	}
}

func TestNordstromPeriods(t *testing.T) {
	s := querylog.New(3).Exemplar(querylog.Nordstrom)
	d, err := Detect(s.Values, DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasPeriodNear(7, 0.2) {
		t.Errorf("nordstrom: weekly period not detected; top: %v", d.Top(5))
	}
}

// Fig. 13's fourth panel: a bursty but non-periodic query should yield no
// (or almost no) significant periods — the threshold avoids false alarms.
func TestDudleyMooreNoFalseAlarms(t *testing.T) {
	s := querylog.New(4).Exemplar(querylog.DudleyMoore)
	d, err := Detect(s.Values, DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	// A single one-shot event spreads energy across all frequencies; allow
	// a couple of borderline bins but nothing resembling a periodic comb.
	if len(d.Periods) > 3 {
		t.Errorf("dudley moore: %d significant periods, want ~0: %v", len(d.Periods), d.Top(5))
	}
}

// Property: white noise at 99.99% confidence rarely produces false alarms.
func TestWhiteNoiseFalseAlarmRate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alarms, bins := 0, 0
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, 512)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		d, err := Detect(x, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		alarms += len(d.Periods)
		bins += len(d.Periodogram) - 1
	}
	rate := float64(alarms) / float64(bins)
	// Expected rate is 1e-4; allow an order of magnitude of slack.
	if rate > 1e-3 {
		t.Errorf("false-alarm rate %v too high", rate)
	}
}

// Property: every reported period exceeds the threshold, lengths are
// consistent with bins, and ordering is by decreasing power.
func TestDetectionInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(512)
		x := make([]float64, n)
		per := float64(4 + rng.Intn(40))
		for i := range x {
			x[i] = math.Sin(2*math.Pi*float64(i)/per)*(1+rng.Float64()) + rng.NormFloat64()*0.3
		}
		d, err := Detect(x, 1e-3)
		if err != nil {
			return false
		}
		for i, p := range d.Periods {
			if p.Power <= d.Threshold {
				return false
			}
			if math.Abs(p.Length-float64(n)/float64(p.Bin)) > 1e-9 {
				return false
			}
			if i > 0 && d.Periods[i-1].Power < p.Power {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTopAndHasPeriodNear(t *testing.T) {
	d := &Detection{Periods: []Period{
		{Bin: 2, Length: 50, Power: 9},
		{Bin: 4, Length: 25, Power: 5},
	}}
	if len(d.Top(1)) != 1 || d.Top(1)[0].Length != 50 {
		t.Error("Top(1) wrong")
	}
	if len(d.Top(10)) != 2 {
		t.Error("Top should clamp")
	}
	if !d.HasPeriodNear(25, 0.5) || d.HasPeriodNear(10, 0.5) {
		t.Error("HasPeriodNear wrong")
	}
}

func TestPowerHistogramExponentialOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := make([]float64, 2048)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	d, err := Detect(x, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	h, dist, err := d.PowerHistogram(30)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != len(d.Periodogram)-1 {
		t.Errorf("histogram N = %d", h.N)
	}
	// Fig. 12: the power histogram of noise should fit an exponential well.
	// Bin-0 density of an exponential dominates; check monotone-ish decay by
	// comparing first and last thirds.
	first, last := 0, 0
	for i, c := range h.Counts {
		if i < len(h.Counts)/3 {
			first += c
		}
		if i >= 2*len(h.Counts)/3 {
			last += c
		}
	}
	if first <= last {
		t.Errorf("power histogram not decaying: first-third %d vs last-third %d", first, last)
	}
	if fitErr := h.ExponentialFitError(dist); fitErr > 2*dist.Lambda {
		t.Errorf("exponential fit error %v too large (lambda %v)", fitErr, dist.Lambda)
	}
}

func TestPeriodString(t *testing.T) {
	p := Period{Bin: 3, Length: 7.0, Frequency: 0.142, Power: 0.5}
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func BenchmarkDetect1024(b *testing.B) {
	s := querylog.New(7).Exemplar(querylog.Cinema)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(s.Values, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDetectSetSharedPeriod(t *testing.T) {
	// Several weekly series with different noise: the set detector should
	// find the shared 7-day rhythm and suppress idiosyncratic peaks.
	g := querylog.New(20)
	set := [][]float64{
		g.Exemplar(querylog.Cinema).Values,
		g.Exemplar(querylog.Nordstrom).Values,
		g.Exemplar(querylog.Cinema).Values, // second draw has new noise
	}
	det, err := DetectSet(set, DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	if !det.HasPeriodNear(7, 0.2) {
		t.Errorf("shared weekly period not found: %v", det.Top(5))
	}
}

func TestDetectSetSuppressesIdiosyncraticPeaks(t *testing.T) {
	// One strongly periodic series mixed with many noise series: the set
	// threshold should require the period to survive the averaging.
	rng := rand.New(rand.NewSource(21))
	mk := func(amp float64) []float64 {
		x := make([]float64, 512)
		for i := range x {
			x[i] = amp*math.Sin(2*math.Pi*float64(i)/16) + rng.NormFloat64()
		}
		return x
	}
	weak := [][]float64{mk(0.6)}
	for i := 0; i < 7; i++ {
		weak = append(weak, mk(0))
	}
	single, err := Detect(weak[0], DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	set, err := DetectSet(weak, DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	if single.HasPeriodNear(16, 0.5) && set.HasPeriodNear(16, 0.5) {
		t.Log("period survived averaging (acceptable), checking power drop")
	}
	// The averaged power at the period bin must be far below the single
	// series' power.
	bin := 512 / 16
	if set.Periodogram[bin] >= single.Periodogram[bin] {
		t.Errorf("averaging did not dilute the lone peak: %v vs %v",
			set.Periodogram[bin], single.Periodogram[bin])
	}
}

func TestDetectSetErrors(t *testing.T) {
	if _, err := DetectSet(nil, 1e-4); err == nil {
		t.Error("expected error for empty set")
	}
	if _, err := DetectSet([][]float64{make([]float64, 8)}, 0); err == nil {
		t.Error("expected error for p=0")
	}
	if _, err := DetectSet([][]float64{{1, 2}}, 1e-4); err == nil {
		t.Error("expected error for short sequences")
	}
	if _, err := DetectSet([][]float64{make([]float64, 8), make([]float64, 9)}, 1e-4); err == nil {
		t.Error("expected error for ragged set")
	}
	// Flat set: no periods, no error.
	det, err := DetectSet([][]float64{make([]float64, 16)}, 1e-4)
	if err != nil || len(det.Periods) != 0 {
		t.Errorf("flat set: %v %v", det, err)
	}
}

func TestPValues(t *testing.T) {
	s := querylog.New(30).Exemplar(querylog.Cinema)
	det, err := Detect(s.Values, DefaultConfidence)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Periods) == 0 {
		t.Fatal("no periods")
	}
	for _, p := range det.Periods {
		if p.PValue <= 0 || p.PValue >= DefaultConfidence {
			t.Errorf("period %v: p-value %v should be in (0, %v)", p.Length, p.PValue, DefaultConfidence)
		}
	}
	// Stronger power ⇒ smaller p-value.
	for i := 1; i < len(det.Periods); i++ {
		if det.Periods[i].PValue < det.Periods[i-1].PValue {
			t.Error("p-values not monotone with power ordering")
		}
	}
}
