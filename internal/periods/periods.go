// Package periods implements the paper's automatic detection of important
// periods (§5): under the null model of a non-periodic sequence (i.i.d.
// Gaussian samples) the periodogram powers follow an exponential
// distribution, so significant periods are the bins whose power exceeds the
// exponential tail threshold
//
//	Tp = −mean(P) · ln(p)
//
// for a caller-chosen false-alarm probability p (the paper uses p = 10⁻⁴,
// i.e. 99.99 % confidence).
package periods

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/fft"
	"repro/internal/stats"
)

// DefaultConfidence is the paper's 99.99 % confidence level (p = 10⁻⁴).
const DefaultConfidence = 1e-4

// Period is one detected significant period.
type Period struct {
	// Bin is the periodogram bin (frequency index).
	Bin int
	// Length is the period in samples: N / Bin.
	Length float64
	// Frequency is the normalized frequency Bin / N (cycles per sample).
	Frequency float64
	// Power is the periodogram power at the bin.
	Power float64
	// PValue is the probability of a power this large under the
	// exponential null model, P(X ≥ Power) = e^(−λ·Power) — how surprising
	// the period is (smaller = more significant).
	PValue float64
}

// String implements fmt.Stringer.
func (p Period) String() string {
	return fmt.Sprintf("P=%.2f (f=%.4f, power=%.4f)", p.Length, p.Frequency, p.Power)
}

// Detection is the full result of a period scan.
type Detection struct {
	// Periods are the significant periods, strongest first.
	Periods []Period
	// Threshold is the power threshold Tp used.
	Threshold float64
	// MeanPower is the average periodogram power (the exponential mean).
	MeanPower float64
	// Periodogram is the power spectral density the scan inspected
	// (DC excluded at index 0 — see Detect).
	Periodogram []float64
	// N is the analyzed sequence length.
	N int
}

// Detect scans a time series for significant periods at the given
// false-alarm probability p (use DefaultConfidence for the paper's setting).
// The series is standardized internally, which removes the DC component; the
// DC bin is excluded from both the exponential fit and the detection, since
// "period infinity" is not a periodicity.
func Detect(values []float64, p float64) (*Detection, error) {
	if len(values) < 4 {
		return nil, errors.New("periods: need at least 4 samples")
	}
	if p <= 0 || p >= 1 {
		return nil, errors.New("periods: probability must be in (0,1)")
	}
	z := stats.Standardize(values)
	pg, err := fft.PeriodogramReal(z)
	if err != nil {
		return nil, err
	}
	// Drop DC (bin 0). Standardization makes it ~0 anyway.
	body := pg[1:]
	mean := stats.Mean(body)
	det := &Detection{
		MeanPower:   mean,
		Periodogram: pg,
		N:           len(values),
	}
	if mean <= 0 {
		// Flat series: nothing is periodic, threshold is degenerate.
		det.Threshold = 0
		return det, nil
	}
	dist := stats.Exponential{Lambda: 1 / mean}
	det.Threshold = dist.TailThreshold(p)
	for k := 1; k < len(pg); k++ {
		if pg[k] > det.Threshold {
			det.Periods = append(det.Periods, Period{
				Bin:       k,
				Length:    fft.PeriodOf(k, len(values)),
				Frequency: fft.FrequencyOf(k, len(values)),
				Power:     pg[k],
				PValue:    dist.Tail(pg[k]),
			})
		}
	}
	sort.Slice(det.Periods, func(a, b int) bool {
		return det.Periods[a].Power > det.Periods[b].Power
	})
	return det, nil
}

// Top returns the strongest min(k, len) detected periods.
func (d *Detection) Top(k int) []Period {
	if k > len(d.Periods) {
		k = len(d.Periods)
	}
	return d.Periods[:k]
}

// HasPeriodNear reports whether a significant period within tol samples of
// length was detected.
func (d *Detection) HasPeriodNear(length, tol float64) bool {
	for _, p := range d.Periods {
		if p.Length >= length-tol && p.Length <= length+tol {
			return true
		}
	}
	return false
}

// DetectSet finds the significant periods of a *set* of sequences — the §5
// motivation ("an automatic method that will return the important periods
// for a set of sequences (e.g., for the knn results)"). Each sequence is
// standardized and its periodogram computed; the mean periodogram across
// the set is then thresholded exactly like Detect. Averaging suppresses
// per-sequence noise, so periods shared by the set stand out while
// idiosyncratic peaks wash out. All sequences must share one length.
func DetectSet(set [][]float64, p float64) (*Detection, error) {
	if len(set) == 0 {
		return nil, errors.New("periods: empty set")
	}
	if p <= 0 || p >= 1 {
		return nil, errors.New("periods: probability must be in (0,1)")
	}
	n := len(set[0])
	if n < 4 {
		return nil, errors.New("periods: need at least 4 samples")
	}
	var mean []float64
	for _, values := range set {
		if len(values) != n {
			return nil, errors.New("periods: set sequences must share one length")
		}
		z := stats.Standardize(values)
		pg, err := fft.PeriodogramReal(z)
		if err != nil {
			return nil, err
		}
		if mean == nil {
			mean = make([]float64, len(pg))
		}
		for k, v := range pg {
			mean[k] += v
		}
	}
	for k := range mean {
		mean[k] /= float64(len(set))
	}

	det := &Detection{Periodogram: mean, N: n}
	body := mean[1:]
	det.MeanPower = stats.Mean(body)
	if det.MeanPower <= 0 {
		return det, nil
	}
	dist := stats.Exponential{Lambda: 1 / det.MeanPower}
	det.Threshold = dist.TailThreshold(p)
	for k := 1; k < len(mean); k++ {
		if mean[k] > det.Threshold {
			det.Periods = append(det.Periods, Period{
				Bin:       k,
				Length:    fft.PeriodOf(k, n),
				Frequency: fft.FrequencyOf(k, n),
				Power:     mean[k],
				PValue:    dist.Tail(mean[k]),
			})
		}
	}
	sort.Slice(det.Periods, func(a, b int) bool {
		return det.Periods[a].Power > det.Periods[b].Power
	})
	return det, nil
}

// PowerHistogram builds a histogram of the (DC-excluded) periodogram powers
// with the given number of bins, together with the fitted exponential — the
// fig. 12 diagnostic showing that non-periodic sequences have
// exponentially-distributed power.
func (d *Detection) PowerHistogram(bins int) (*stats.Histogram, stats.Exponential, error) {
	h, err := stats.NewHistogram(d.Periodogram[1:], bins)
	if err != nil {
		return nil, stats.Exponential{}, err
	}
	dist, err := stats.FitExponential(d.Periodogram[1:])
	if err != nil {
		return nil, stats.Exponential{}, err
	}
	return h, dist, nil
}
