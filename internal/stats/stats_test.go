package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanBasics(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(x); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := Std(x); !almostEq(got, 2, 1e-12) {
		t.Errorf("Std = %v, want 2", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
}

func TestMeanStdMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()*10 + 3
		}
		m, s := MeanStd(x)
		if !almostEq(m, Mean(x), 1e-9) {
			t.Fatalf("MeanStd mean %v != Mean %v", m, Mean(x))
		}
		if !almostEq(s, Std(x), 1e-9) {
			t.Fatalf("MeanStd std %v != Std %v", s, Std(x))
		}
	}
}

func TestStandardize(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	z := Standardize(x)
	if x[0] != 1 {
		t.Fatal("Standardize mutated its input")
	}
	m, s := MeanStd(z)
	if !almostEq(m, 0, 1e-12) || !almostEq(s, 1, 1e-12) {
		t.Errorf("standardized mean/std = %v/%v, want 0/1", m, s)
	}
}

func TestStandardizeFlatSeries(t *testing.T) {
	x := []float64{3, 3, 3, 3}
	z := Standardize(x)
	for i, v := range z {
		if v != 0 {
			t.Errorf("flat series z[%d] = %v, want 0", i, v)
		}
	}
}

// Property: standardization is idempotent (z-scoring a z-scored non-flat
// series leaves it unchanged up to float error).
func TestStandardizeIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 5
		}
		z1 := Standardize(x)
		if Std(z1) == 0 {
			return true // degenerate draw; nothing to check
		}
		z2 := Standardize(z1)
		for i := range z1 {
			if !almostEq(z1[i], z2[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMovingAverage(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	ma, err := MovingAverage(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1.5, 2, 3, 4}
	for i := range want {
		if !almostEq(ma[i], want[i], 1e-12) {
			t.Errorf("MA[%d] = %v, want %v", i, ma[i], want[i])
		}
	}
	if _, err := MovingAverage(x, 0); err == nil {
		t.Error("expected error for window 0")
	}
}

func TestMovingAverageWindowOne(t *testing.T) {
	x := []float64{4, -2, 9}
	ma, err := MovingAverage(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if ma[i] != x[i] {
			t.Errorf("window-1 MA[%d] = %v, want identity %v", i, ma[i], x[i])
		}
	}
}

// Property: a trailing moving average of a constant series is that constant,
// and the MA always lies within [min, max] of the input.
func TestMovingAverageBoundsProperty(t *testing.T) {
	f := func(seed int64, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		w := 1 + int(wRaw)%30
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*100 - 50
		}
		ma, err := MovingAverage(x, w)
		if err != nil {
			return false
		}
		lo, hi := Min(x), Max(x)
		for _, v := range ma {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCenteredMovingAverage(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	ma, err := CenteredMovingAverage(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	// center elements average their neighborhood
	if !almostEq(ma[2], 3, 1e-12) {
		t.Errorf("centered MA[2] = %v, want 3", ma[2])
	}
	// boundary shrinks
	if !almostEq(ma[0], 1.5, 1e-12) {
		t.Errorf("centered MA[0] = %v, want 1.5", ma[0])
	}
}

func TestMinMaxArgMax(t *testing.T) {
	x := []float64{3, -1, 7, 2}
	if Min(x) != -1 || Max(x) != 7 || ArgMax(x) != 2 {
		t.Errorf("Min/Max/ArgMax = %v/%v/%v", Min(x), Max(x), ArgMax(x))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) || ArgMax(nil) != -1 {
		t.Error("empty-input sentinels wrong")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Errorf("Pearson = %v (err %v), want 1", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(x, neg)
	if err != nil || !almostEq(r, -1, 1e-12) {
		t.Errorf("Pearson = %v (err %v), want -1", r, err)
	}
	if _, err := Pearson(x, x[:2]); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("expected constant-series error")
	}
}

func TestSumSquaresEnergy(t *testing.T) {
	x := []float64{3, 4}
	if SumSquares(x) != 25 || Energy(x) != 25 {
		t.Errorf("SumSquares/Energy = %v/%v, want 25", SumSquares(x), Energy(x))
	}
	if Sum(x) != 7 {
		t.Errorf("Sum = %v, want 7", Sum(x))
	}
}

func TestExponentialFitAndThreshold(t *testing.T) {
	// Sample from Exp(λ=2); MLE should recover λ ≈ 2.
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, 200000)
	for i := range x {
		x[i] = rng.ExpFloat64() / 2
	}
	dist, err := FitExponential(x)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(dist.Lambda, 2, 0.05) {
		t.Errorf("fitted lambda = %v, want ~2", dist.Lambda)
	}
	// Paper §5.1 example: mean power 0.02, p = 1e-4 → Tp = −0.02·ln(1e-4)
	// = 0.1842. (The paper prints 0.0184, a factor-of-10 typo; the formula
	// Tp = −µ·ln(p) it derives gives 0.1842.)
	d := Exponential{Lambda: 1 / 0.02}
	tp := d.TailThreshold(1e-4)
	if !almostEq(tp, 0.18421, 0.0002) {
		t.Errorf("threshold = %v, want ~0.1842 (paper §5.1 example, typo-corrected)", tp)
	}
}

func TestExponentialCDFAndQuantileRoundTrip(t *testing.T) {
	d := Exponential{Lambda: 1.7}
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.999} {
		q := d.Quantile(p)
		if !almostEq(d.CDF(q), p, 1e-12) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, d.CDF(q))
		}
	}
	if d.CDF(-1) != 0 || d.PDF(-1) != 0 || d.Tail(-1) != 1 {
		t.Error("negative-argument conventions wrong")
	}
	if !math.IsNaN(d.Quantile(1)) || !math.IsNaN(d.TailThreshold(0)) {
		t.Error("out-of-domain arguments should give NaN")
	}
}

// Property: TailThreshold inverts Tail: P(X >= Tp) == p.
func TestTailThresholdProperty(t *testing.T) {
	f := func(lraw, praw uint16) bool {
		lambda := 0.01 + float64(lraw%1000)/100
		p := (1 + float64(praw%9998)) / 10000 // in (0,1)
		d := Exponential{Lambda: lambda}
		tp := d.TailThreshold(p)
		return almostEq(d.Tail(tp), p, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitExponentialErrors(t *testing.T) {
	if _, err := FitExponential(nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := FitExponential([]float64{0, 0}); err == nil {
		t.Error("expected error for non-positive mean")
	}
}

func TestHistogram(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h, err := NewHistogram(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 10 {
		t.Errorf("N = %d, want 10", h.N)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Errorf("total counts = %d, want 10", total)
	}
	// Density should integrate to ~1.
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	integral := 0.0
	for i := range h.Counts {
		integral += h.Density(i) * w
	}
	if !almostEq(integral, 1, 1e-12) {
		t.Errorf("density integral = %v, want 1", integral)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{2, 2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 {
		t.Errorf("flat data should fill bin 0, got %v", h.Counts)
	}
	if _, err := NewHistogram(nil, 3); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("expected error for zero bins")
	}
}

func TestHistogramExponentialShape(t *testing.T) {
	// The PSD histogram of exponential data should fit an exponential far
	// better than uniform data does (fig. 12 sanity).
	rng := rand.New(rand.NewSource(1))
	exp := make([]float64, 50000)
	uni := make([]float64, 50000)
	for i := range exp {
		exp[i] = rng.ExpFloat64()
		uni[i] = rng.Float64() * 3
	}
	he, _ := NewHistogram(exp, 40)
	hu, _ := NewHistogram(uni, 40)
	de, _ := FitExponential(exp)
	du, _ := FitExponential(uni)
	if he.ExponentialFitError(de) >= hu.ExponentialFitError(du) {
		t.Errorf("exponential data fit error %v should beat uniform %v",
			he.ExponentialFitError(de), hu.ExponentialFitError(du))
	}
}

func BenchmarkMeanStd(b *testing.B) {
	x := make([]float64, 1024)
	for i := range x {
		x[i] = float64(i % 17)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MeanStd(x)
	}
}

func BenchmarkMovingAverage(b *testing.B) {
	x := make([]float64, 1024)
	for i := range x {
		x[i] = float64(i % 31)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MovingAverage(x, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	med, err := Median(x)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(med, 3.5, 1e-12) {
		t.Errorf("median = %v, want 3.5", med)
	}
	q0, _ := Quantile(x, 0)
	q1, _ := Quantile(x, 1)
	if q0 != 1 || q1 != 9 {
		t.Errorf("extremes %v/%v, want 1/9", q0, q1)
	}
	q25, _ := Quantile(x, 0.25)
	if !almostEq(q25, 1.75, 1e-12) {
		t.Errorf("q25 = %v, want 1.75", q25)
	}
	if one, _ := Quantile([]float64{7}, 0.9); one != 7 {
		t.Errorf("single-element quantile = %v", one)
	}
	if x[0] != 3 {
		t.Error("Quantile mutated its input")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("expected ErrEmpty")
	}
	if _, err := Quantile(x, 1.5); err == nil {
		t.Error("expected range error")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(x, q)
			if err != nil || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		lo, _ := Quantile(x, 0)
		hi, _ := Quantile(x, 1)
		return lo == Min(x) && hi == Max(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
