// Package stats provides the small statistical toolkit the query-mining
// system is built on: moments, standardization, moving averages, histograms
// and the exponential-tail threshold used by the period detector.
//
// Everything operates on []float64 and never mutates its input unless the
// function name says so (e.g. StandardizeInPlace).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of x. It returns 0 for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// Variance returns the population variance of x (denominator n).
// It returns 0 for inputs of length < 1.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	ss := 0.0
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return ss / float64(len(x))
}

// Std returns the population standard deviation of x.
func Std(x []float64) float64 {
	return math.Sqrt(Variance(x))
}

// MeanStd returns both the mean and population standard deviation of x in a
// single pass (Welford's algorithm), which is cheaper and more numerically
// stable than calling Mean and Std separately.
func MeanStd(x []float64) (mean, std float64) {
	if len(x) == 0 {
		return 0, 0
	}
	var m, m2 float64
	for i, v := range x {
		delta := v - m
		m += delta / float64(i+1)
		m2 += delta * (v - m)
	}
	return m, math.Sqrt(m2 / float64(len(x)))
}

// Sum returns the sum of x.
func Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// SumSquares returns Σ x_i².
func SumSquares(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}

// Energy returns the signal energy Σ x_i² (an alias of SumSquares kept for
// readability at call sites that reason about spectra).
func Energy(x []float64) float64 { return SumSquares(x) }

// Standardize returns a new slice holding (x - mean) / std.
// If the standard deviation is zero (constant series) the returned slice is
// all zeros, which is the conventional behaviour for z-scoring a flat signal.
func Standardize(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	StandardizeInPlace(out)
	return out
}

// StandardizeInPlace z-scores x in place. Flat series become all zeros.
func StandardizeInPlace(x []float64) {
	m, s := MeanStd(x)
	if s == 0 {
		for i := range x {
			x[i] = 0
		}
		return
	}
	for i := range x {
		x[i] = (x[i] - m) / s
	}
}

// MovingAverage returns the trailing moving average of x with window w.
// Element i of the result averages x[max(0,i-w+1) .. i]; the warm-up prefix
// therefore averages over fewer than w points instead of being dropped, so the
// output has the same length as the input. w must be >= 1.
func MovingAverage(x []float64, w int) ([]float64, error) {
	if w < 1 {
		return nil, errors.New("stats: moving-average window must be >= 1")
	}
	out := make([]float64, len(x))
	sum := 0.0
	for i, v := range x {
		sum += v
		if i >= w {
			sum -= x[i-w]
			out[i] = sum / float64(w)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out, nil
}

// CenteredMovingAverage returns the moving average with a window centered on
// each element (half-window on each side), shrinking near the boundaries.
// It is used for display purposes; the burst detector uses the trailing form.
func CenteredMovingAverage(x []float64, w int) ([]float64, error) {
	if w < 1 {
		return nil, errors.New("stats: moving-average window must be >= 1")
	}
	half := w / 2
	out := make([]float64, len(x))
	for i := range x {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(x) {
			hi = len(x) - 1
		}
		out[i] = Mean(x[lo : hi+1])
	}
	return out, nil
}

// Min returns the minimum of x. It returns +Inf for empty input.
func Min(x []float64) float64 {
	m := math.Inf(1)
	for _, v := range x {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of x. It returns -Inf for empty input.
func Max(x []float64) float64 {
	m := math.Inf(-1)
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the maximum element, or -1 for empty input.
func ArgMax(x []float64) int {
	idx := -1
	m := math.Inf(-1)
	for i, v := range x {
		if v > m {
			m = v
			idx = i
		}
	}
	return idx
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns an error if the lengths differ or either input is empty or flat.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(x) == 0 {
		return 0, ErrEmpty
	}
	mx, sx := MeanStd(x)
	my, sy := MeanStd(y)
	if sx == 0 || sy == 0 {
		return 0, errors.New("stats: correlation undefined for constant series")
	}
	cov := 0.0
	for i := range x {
		cov += (x[i] - mx) * (y[i] - my)
	}
	cov /= float64(len(x))
	return cov / (sx * sy), nil
}

// Quantile returns the q-th quantile of x (0 ≤ q ≤ 1) using linear
// interpolation between order statistics (the R-7/NumPy default). It
// returns an error for empty input or q outside [0,1].
func Quantile(x []float64, q float64) (float64, error) {
	if len(x) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile must be in [0,1]")
	}
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of x.
func Median(x []float64) (float64, error) {
	return Quantile(x, 0.5)
}
