package stats

import (
	"errors"
	"math"
)

// Exponential models an exponential distribution with rate λ, used by the
// period detector: under the paper's null model (i.i.d. Gaussian samples) the
// periodogram powers are exponentially distributed, and significant periods
// are the outliers of that distribution (§5.1).
type Exponential struct {
	// Lambda is the rate parameter (inverse of the mean).
	Lambda float64
}

// FitExponential fits an exponential distribution to the sample x by the
// maximum-likelihood estimator λ = 1/mean(x).
func FitExponential(x []float64) (Exponential, error) {
	if len(x) == 0 {
		return Exponential{}, ErrEmpty
	}
	m := Mean(x)
	if m <= 0 {
		return Exponential{}, errors.New("stats: exponential fit requires positive mean")
	}
	return Exponential{Lambda: 1 / m}, nil
}

// PDF returns the probability density λ·e^(−λx), or 0 for x < 0.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Lambda * math.Exp(-e.Lambda*x)
}

// CDF returns P(X ≤ x) = 1 − e^(−λx), or 0 for x < 0.
func (e Exponential) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Exp(-e.Lambda*x)
}

// Tail returns the survival probability P(X ≥ x) = e^(−λx).
func (e Exponential) Tail(x float64) float64 {
	if x < 0 {
		return 1
	}
	return math.Exp(-e.Lambda * x)
}

// Quantile returns the value q such that P(X ≤ q) = p, for p in [0,1).
func (e Exponential) Quantile(p float64) float64 {
	if p < 0 || p >= 1 {
		return math.NaN()
	}
	return -math.Log(1-p) / e.Lambda
}

// TailThreshold returns the power threshold Tp such that P(X ≥ Tp) = p,
// i.e. Tp = −ln(p)/λ = −mean·ln(p). This is equation (§5.1) of the paper:
// with p = 1e−4 only one periodogram bin in ten thousand of a non-periodic
// signal exceeds the threshold.
func (e Exponential) TailThreshold(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	return -math.Log(p) / e.Lambda
}

// Histogram is a fixed-width histogram over [Lo, Hi) with len(Counts) bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// N is the total number of observations, including any that fell
	// outside [Lo, Hi) (clamped into the edge bins).
	N int
}

// NewHistogram builds a histogram of x with the given number of bins spanning
// [min(x), max(x)]. Values equal to the maximum land in the last bin.
func NewHistogram(x []float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, errors.New("stats: histogram needs >= 1 bin")
	}
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	lo, hi := Min(x), Max(x)
	if lo == hi {
		hi = lo + 1 // degenerate span: everything in bin 0
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	for _, v := range x {
		h.Add(v)
	}
	return h, nil
}

// Add records one observation, clamping out-of-range values to the edge bins.
func (h *Histogram) Add(v float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (v - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.N++
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Density returns the normalized density of bin i (integrates to ~1).
func (h *Histogram) Density(i int) float64 {
	if h.N == 0 {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(h.N) * w)
}

// ExponentialFitError measures how far the histogram deviates from the best
// fitting exponential density, as the mean absolute difference between the
// empirical bin density and the fitted PDF at bin centers. Small values mean
// "looks exponential" — the property fig. 12 illustrates for the PSD of
// non-periodic sequences.
func (h *Histogram) ExponentialFitError(dist Exponential) float64 {
	if len(h.Counts) == 0 {
		return 0
	}
	sum := 0.0
	for i := range h.Counts {
		c := h.BinCenter(i)
		sum += math.Abs(h.Density(i) - dist.PDF(c))
	}
	return sum / float64(len(h.Counts))
}
