package vptree

import (
	"math"
	"testing"

	"repro/internal/querylog"
	"repro/internal/seqstore"
	"repro/internal/spectral"
)

// The §8 extension: a tree of variable-size (energy-capped) representations
// must still answer exactly.
func TestEnergyFractionTreeExact(t *testing.T) {
	fx := buildFixture(t, 100, 128, Options{EnergyFraction: 0.9}, 40)
	for qi, q := range fx.queries {
		want := bruteKNN(t, fx.values, q, 3)
		got, st, err := fx.tree.Search(q, 3, fx.tree.Features(), fx.store)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Errorf("query %d rank %d: %v vs %v", qi, i, got[i].Dist, want[i].Dist)
			}
		}
		if st.BoundsComputed == 0 {
			t.Error("no bounds computed")
		}
	}
	// Representation sizes should actually vary across objects.
	sizes := map[int]bool{}
	for _, c := range fx.tree.Features() {
		sizes[len(c.Positions)] = true
	}
	if len(sizes) < 3 {
		t.Errorf("energy compression produced only %d distinct sizes", len(sizes))
	}
}

// Smooth (periodic) series should get far smaller representations than
// noise at the same captured energy.
func TestEnergyFractionAdaptsToContent(t *testing.T) {
	g := querylog.NewGenerator(querylog.DefaultStart, 512, 41)
	periodic := g.Exemplar(querylog.Cinema).Standardized()
	noise := g.Exemplar(querylog.WhiteNoiseName).Standardized()
	hp, err := spectral.FromValues(periodic.Values)
	if err != nil {
		t.Fatal(err)
	}
	hn, err := spectral.FromValues(noise.Values)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := spectral.CompressEnergy(hp, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := spectral.CompressEnergy(hn, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Positions)*2 >= len(cn.Positions) {
		t.Errorf("periodic needs %d coeffs, noise %d — expected periodic << noise",
			len(cp.Positions), len(cn.Positions))
	}
}

func TestEnergyFractionWithDynamicInsert(t *testing.T) {
	g := querylog.NewGenerator(querylog.DefaultStart, 64, 42)
	data := querylog.StandardizeAll(g.Dataset(20))
	store, err := seqstore.NewMemory(64)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]*spectral.HalfSpectrum, 10)
	ids := make([]int, 10)
	for i := 0; i < 10; i++ {
		if ids[i], err = store.Append(data[i].Values); err != nil {
			t.Fatal(err)
		}
		if specs[i], err = spectral.FromValues(data[i].Values); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := Build(specs, ids, Options{EnergyFraction: 0.85, Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		id, err := store.Append(data[i].Values)
		if err != nil {
			t.Fatal(err)
		}
		h, err := spectral.FromValues(data[i].Values)
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Insert(h, id); err != nil {
			t.Fatal(err)
		}
	}
	q := querylog.StandardizeAll(g.Queries(1))[0]
	values := make([][]float64, 20)
	for i := range values {
		values[i] = data[i].Values
	}
	want := bruteKNN(t, values, q.Values, 1)[0]
	got, _, err := tree.Search(q.Values, 1, tree.Features(), store)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0].Dist-want.Dist) > 1e-9 {
		t.Errorf("energy+dynamic: %v vs %v", got[0].Dist, want.Dist)
	}
}
