package vptree

import (
	"errors"

	"repro/internal/spectral"
)

// Dynamic maintenance (§4.1 notes that "accommodation of insertion and
// deletion procedures can be implemented on top of the proposed search
// mechanisms", citing the dynamic vp-tree of Fu et al.). A dynamic tree
// retains the uncompressed spectra of its objects so that inserts can
// route and split with exact distances, exactly like construction does;
// static trees stay compact and reject updates.
//
//   - Insert descends by exact distance to each vantage point and appends
//     to the reached leaf; a leaf that overflows past 2×LeafSize is rebuilt
//     into a subtree from its retained spectra.
//   - Delete tombstones the object wherever it lives: leaf entries are
//     removed outright, vantage points stay as routing-only markers (their
//     position is load-bearing for the subtree's median invariant) and are
//     excluded from results.

// ErrStatic is returned when updating a tree built without Dynamic mode.
var ErrStatic = errors.New("vptree: tree was built without Options.Dynamic")

// ErrDuplicateID is returned when inserting an ID the tree already holds.
var ErrDuplicateID = errors.New("vptree: duplicate sequence ID")

// Insert adds a new object to a dynamic tree. The spectrum must have the
// tree's sequence length; id must address the object in the seqstore used
// at query time.
func (t *Tree) Insert(spec *spectral.HalfSpectrum, id int) error {
	if !t.opts.Dynamic {
		return ErrStatic
	}
	if spec.N != t.seqLen {
		return spectral.ErrMismatch
	}
	if _, dup := t.specByID[id]; dup {
		return ErrDuplicateID
	}
	nd, err := t.insertNode(t.root, spec, id)
	if err != nil {
		return err
	}
	t.root = nd
	t.specByID[id] = spec
	t.n++
	// The flat mirror is structure-dependent; re-derive it from the updated
	// tree and feature table. Callers (the engine) hold the write lock, so
	// no search observes the window between update and rebuild.
	t.rebuildFlat()
	return nil
}

func (t *Tree) insertNode(nd *node, spec *spectral.HalfSpectrum, id int) (*node, error) {
	if nd.leaf != nil {
		ref, err := t.compressSpec(spec)
		if err != nil {
			return nil, err
		}
		nd.leaf = append(nd.leaf, entry{id: id, ref: ref})
		if len(nd.leaf) <= 2*t.opts.LeafSize {
			return nd, nil
		}
		return t.rebuildLeaf(nd, spec, id)
	}
	vpSpec, ok := t.specByID[nd.vpID]
	if !ok {
		// The vantage point's spectrum was dropped by a delete; route by
		// reconstructing it from the stored compressed form (exact enough
		// for routing is not acceptable — so we keep VP spectra on delete;
		// reaching here is a bug).
		return nil, errors.New("vptree: missing vantage-point spectrum")
	}
	d, err := spectral.Distance(vpSpec, spec)
	if err != nil {
		return nil, err
	}
	var child **node
	if d <= nd.median {
		child = &nd.left
	} else {
		child = &nd.right
	}
	sub, err := t.insertNode(*child, spec, id)
	if err != nil {
		return nil, err
	}
	*child = sub
	return nd, nil
}

// compressSpec compresses one spectrum into the feature table, using the
// fixed Budget or, when EnergyFraction is set, the §8 variable-coefficient
// scheme.
func (t *Tree) compressSpec(spec *spectral.HalfSpectrum) (int, error) {
	c, err := compressOne(spec, t.opts)
	if err != nil {
		return 0, err
	}
	t.features = append(t.features, c)
	return len(t.features) - 1, nil
}

// rebuildLeaf converts an overflowing leaf (which already contains the new
// entry) into a subtree built with the standard construction algorithm.
// Existing feature refs are reused — the entries' compressed forms do not
// change, only the routing structure above them — so a rebuild never grows
// the feature table. Rebuilds run serially: they sit under the engine's
// write lock and leaves are small.
func (t *Tree) rebuildLeaf(nd *node, newSpec *spectral.HalfSpectrum, newID int) (*node, error) {
	specs := make([]*spectral.HalfSpectrum, 0, len(nd.leaf))
	ids := make([]int, 0, len(nd.leaf))
	refs := make([]int, 0, len(nd.leaf))
	for _, e := range nd.leaf {
		s, ok := t.specByID[e.id]
		if !ok {
			if e.id == newID {
				s = newSpec
			} else {
				return nil, errors.New("vptree: missing spectrum for leaf rebuild")
			}
		}
		specs = append(specs, s)
		ids = append(ids, e.id)
		refs = append(refs, e.ref)
	}
	idx := make([]int, len(specs))
	for i := range idx {
		idx[i] = i
	}
	b := &builder{t: t, specs: specs, ids: ids, refs: refs, salt: uint64(len(t.features))}
	return b.build(idx, rootPath)
}

// Delete removes the object with the given id from a dynamic tree and
// reports whether it was present. Vantage points are tombstoned (kept for
// routing, excluded from search results); leaf entries are removed.
func (t *Tree) Delete(id int) (bool, error) {
	if !t.opts.Dynamic {
		return false, ErrStatic
	}
	removed := t.deleteNode(t.root, id)
	if removed {
		t.n--
		// Keep the spectrum of tombstoned vantage points: inserts still
		// route through them. Leaf spectra are no longer needed.
		if !t.isVantage(t.root, id) {
			delete(t.specByID, id)
		}
		t.rebuildFlat()
	}
	return removed, nil
}

func (t *Tree) deleteNode(nd *node, id int) bool {
	if nd == nil {
		return false
	}
	if nd.leaf != nil {
		for i, e := range nd.leaf {
			if e.id == id {
				nd.leaf = append(nd.leaf[:i], nd.leaf[i+1:]...)
				return true
			}
		}
		return false
	}
	if nd.vpID == id && !nd.vpDeleted {
		nd.vpDeleted = true
		return true
	}
	if t.deleteNode(nd.left, id) {
		return true
	}
	return t.deleteNode(nd.right, id)
}

// isVantage reports whether id is a (possibly tombstoned) vantage point.
func (t *Tree) isVantage(nd *node, id int) bool {
	if nd == nil || nd.leaf != nil {
		return false
	}
	if nd.vpID == id {
		return true
	}
	return t.isVantage(nd.left, id) || t.isVantage(nd.right, id)
}

// Contains reports whether the tree holds a live object with the given id.
func (t *Tree) Contains(id int) bool {
	return t.contains(t.root, id)
}

func (t *Tree) contains(nd *node, id int) bool {
	if nd == nil {
		return false
	}
	if nd.leaf != nil {
		for _, e := range nd.leaf {
			if e.id == id {
				return true
			}
		}
		return false
	}
	if nd.vpID == id {
		return !nd.vpDeleted
	}
	return t.contains(nd.left, id) || t.contains(nd.right, id)
}
