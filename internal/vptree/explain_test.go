package vptree

import (
	"math"
	"testing"
)

// TestSearchExplainMatchesSearch checks that the explained path returns the
// exact same neighbours and flat stats as the plain path.
func TestSearchExplainMatchesSearch(t *testing.T) {
	fx := buildFixture(t, 80, 256, Options{Budget: 12}, 11)
	for _, q := range fx.queries {
		plain, pst, err := fx.tree.Search(q, 5, fx.tree.Features(), fx.store)
		if err != nil {
			t.Fatal(err)
		}
		exp, est, rep, err := fx.tree.SearchExplain(q, 5, fx.tree.Features(), fx.store)
		if err != nil {
			t.Fatal(err)
		}
		if rep == nil {
			t.Fatal("SearchExplain returned a nil report")
		}
		if len(plain) != len(exp) {
			t.Fatalf("result counts differ: %d vs %d", len(plain), len(exp))
		}
		for i := range plain {
			if plain[i].ID != exp[i].ID || math.Abs(plain[i].Dist-exp[i].Dist) > 1e-12 {
				t.Errorf("rank %d: plain %v vs explained %v", i, plain[i], exp[i])
			}
		}
		if pst != est {
			t.Errorf("stats differ: plain %+v vs explained %+v", pst, est)
		}
	}
}

// TestSearchExplainAccounting checks the candidate-accounting identity and
// that the per-level rows sum to the flat stats.
func TestSearchExplainAccounting(t *testing.T) {
	fx := buildFixture(t, 120, 256, Options{Budget: 12}, 3)
	for _, q := range fx.queries {
		_, st, rep, err := fx.tree.SearchExplain(q, 4, fx.tree.Features(), fx.store)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Balanced() {
			t.Errorf("accounting identity broken: collected %d != lb %d + skip %d + full %d",
				rep.Collected, rep.FilterLBPrunes, rep.CutoffSkips, rep.FullRetrievals)
		}
		// Stats.Candidates counts survivors of the σ_UB filter, so the raw
		// collection count is survivors plus filter prunes.
		if rep.Collected != st.Candidates+rep.FilterLBPrunes {
			t.Errorf("Collected = %d, want %d survivors + %d filter prunes",
				rep.Collected, st.Candidates, rep.FilterLBPrunes)
		}
		if rep.FullRetrievals != st.FullRetrievals {
			t.Errorf("FullRetrievals = %d, Stats.FullRetrievals = %d", rep.FullRetrievals, st.FullRetrievals)
		}
		if rep.ExactDistances != st.ExactDistances {
			t.Errorf("ExactDistances = %d, Stats.ExactDistances = %d", rep.ExactDistances, st.ExactDistances)
		}
		if rep.TreeSize != fx.tree.Len() || rep.TreeHeight != fx.tree.Height() {
			t.Errorf("tree shape %d/%d, want %d/%d",
				rep.TreeSize, rep.TreeHeight, fx.tree.Len(), fx.tree.Height())
		}
		if rep.K != 4 || rep.Method == "" {
			t.Errorf("report header K=%d Method=%q", rep.K, rep.Method)
		}

		var nodes, bounds, cands, lbSub, ubSub, guided int
		for i, l := range rep.Levels {
			if l.Depth != i {
				t.Errorf("level %d has Depth %d", i, l.Depth)
			}
			nodes += l.InternalNodes + l.Leaves
			bounds += l.BoundsComputed
			cands += l.Candidates
			lbSub += l.LBSubtreePrunes
			ubSub += l.UBSubtreePrunes
			guided += l.GuidedDescentHits
		}
		if nodes != st.NodesVisited {
			t.Errorf("per-level nodes = %d, Stats.NodesVisited = %d", nodes, st.NodesVisited)
		}
		if bounds != st.BoundsComputed {
			t.Errorf("per-level bounds = %d, Stats.BoundsComputed = %d", bounds, st.BoundsComputed)
		}
		if cands != rep.Collected {
			t.Errorf("per-level candidates = %d, Collected = %d", cands, rep.Collected)
		}
		if guided != st.GuidedDescentHits {
			t.Errorf("per-level guided hits = %d, Stats.GuidedDescentHits = %d", guided, st.GuidedDescentHits)
		}
		gotLB, gotUB := rep.TotalSubtreePrunes()
		if gotLB != lbSub || gotUB != ubSub {
			t.Errorf("TotalSubtreePrunes = %d/%d, want %d/%d", gotLB, gotUB, lbSub, ubSub)
		}
		if rep.TraverseMS < 0 || rep.FilterMS < 0 || rep.RefineMS < 0 {
			t.Errorf("negative phase wall: %v %v %v", rep.TraverseMS, rep.FilterMS, rep.RefineMS)
		}
	}
}

// TestSearchExplainSigmaUB checks that the reported threshold actually
// separates filtered candidates from survivors: every full retrieval's lower
// bound must be <= sigma_ub.
func TestSearchExplainSigmaUB(t *testing.T) {
	fx := buildFixture(t, 100, 256, Options{Budget: 10}, 5)
	_, _, rep, err := fx.tree.SearchExplain(fx.queries[0], 3, fx.tree.Features(), fx.store)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SigmaUB <= 0 {
		t.Errorf("SigmaUB = %v, want > 0", rep.SigmaUB)
	}
	if rep.FilterLBPrunes+rep.CutoffSkips+rep.FullRetrievals == 0 {
		t.Error("explain recorded no candidate dispositions at all")
	}
}
