// Package vptree implements the paper's customized vantage-point tree (§4):
// a metric-space index whose vantage points and leaf objects are stored as
// *compressed* spectral representations, searched with the lower/upper
// distance bounds of package spectral instead of exact distances.
//
// Construction follows §4.1: the tree is built on uncompressed data (exact
// distances, exact split medians), selecting as vantage point the candidate
// with the highest standard deviation of distances to the other objects;
// only afterwards is every stored object converted to its compressed form.
//
// Search is the fig. 11 algorithm extended with the guided-descent heuristic:
// at each vantage point the child whose distance annulus overlaps the query
// bounds more is visited first, the best-so-far upper bound σ_UB prunes
// subtrees, and the surviving compressed candidates are refined by fetching
// full sequences from a seqstore.Store in increasing lower-bound order with
// early abandoning.
package vptree

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lifecycle"
	"repro/internal/seqstore"
	"repro/internal/series"
	"repro/internal/spectral"
)

// Options configures tree construction.
type Options struct {
	// Method is the compressed representation family (default BestMinError).
	Method spectral.Method
	// Budget is the memory budget c of "2c+1 doubles" per object (default 16).
	Budget int
	// LeafSize is the max number of objects in a leaf (default 4).
	LeafSize int
	// Candidates is how many vantage-point candidates to evaluate per split
	// (default 8).
	Candidates int
	// Sample is how many distances to sample per candidate when estimating
	// the distance spread (default 32).
	Sample int
	// Seed drives candidate sampling (default 1).
	Seed int64
	// PaperBounds selects the paper-faithful fig. 9 bounds instead of the
	// provably sound SafeBounds. The default (false) uses SafeBounds so that
	// search results are exact.
	PaperBounds bool
	// Dynamic retains the uncompressed spectra so Insert and Delete work
	// after construction, trading the compact-index property for
	// updatability (see dynamic.go).
	Dynamic bool
	// EnergyFraction, when in (0,1], switches to the paper's §8 extension:
	// each object keeps however many best coefficients capture this
	// fraction of its energy (variable-size BestMinError representations)
	// instead of a fixed Budget.
	EnergyFraction float64
	// NoGuidedDescent disables the §4.1 annulus-overlap heuristic and
	// always visits the left child first (ablation knob; results are
	// unchanged, work may increase).
	NoGuidedDescent bool
	// BuildWorkers bounds the goroutines used during construction (default
	// GOMAXPROCS). The tree is deterministic for a given Seed regardless of
	// the worker count: every node derives its sampling RNG from its
	// position in the tree rather than from a shared sequential stream.
	BuildWorkers int
	// NoFlatKernels disables the flat-memory batched bound kernels and keeps
	// every search on the pointer-tree path (ablation / equivalence-testing
	// knob; results are identical by construction, only the memory access
	// pattern changes).
	NoFlatKernels bool
}

func (o *Options) fill() {
	if o.Method == 0 {
		o.Method = spectral.BestMinError
	}
	if o.Budget == 0 {
		o.Budget = 16
	}
	if o.LeafSize == 0 {
		o.LeafSize = 4
	}
	if o.Candidates == 0 {
		o.Candidates = 8
	}
	if o.Sample == 0 {
		o.Sample = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BuildWorkers == 0 {
		o.BuildWorkers = runtime.GOMAXPROCS(0)
	}
	if o.BuildWorkers < 1 {
		o.BuildWorkers = 1
	}
}

// FeatureSource resolves a feature reference to its compressed
// representation. The in-memory implementation is a slice lookup; the disk
// implementation (DiskFeatures) reads and decodes a record, modelling the
// "index on disk" configuration of fig. 23.
type FeatureSource interface {
	// Feature returns the compressed representation for ref.
	Feature(ref int) (*spectral.Compressed, error)
	// NumFeatures returns the number of stored features.
	NumFeatures() int
}

// MemoryFeatures is the in-memory FeatureSource.
type MemoryFeatures []*spectral.Compressed

// Feature implements FeatureSource.
func (m MemoryFeatures) Feature(ref int) (*spectral.Compressed, error) {
	if ref < 0 || ref >= len(m) {
		return nil, fmt.Errorf("vptree: feature ref %d out of range", ref)
	}
	return m[ref], nil
}

// NumFeatures implements FeatureSource.
func (m MemoryFeatures) NumFeatures() int { return len(m) }

// node is one tree node: internal nodes carry a vantage point and a median;
// leaves carry a bucket of entries.
type node struct {
	vpID      int // sequence ID of the vantage point
	vpRef     int // feature reference of the vantage point
	vpDeleted bool
	median    float64
	left      *node
	right     *node
	leaf      []entry // non-nil ⇒ leaf node
}

type entry struct {
	id  int
	ref int
}

// Tree is the compressed vantage-point tree.
type Tree struct {
	root     *node
	n        int
	seqLen   int
	opts     Options
	features MemoryFeatures // populated at build; may be swapped to disk
	// specByID retains the uncompressed spectra in Dynamic mode.
	specByID map[int]*spectral.HalfSpectrum
	// flat is the cache-friendly mirror of the pointer tree (see flat.go);
	// nil when unavailable, in which case searches use the pointer path.
	flat *flatIndex
	// kernels accumulates flat-path kernel work across searches.
	kernels kernelCounters
}

// Stats reports the work one search performed. Every field is a plain
// event count for that single search (not a rate and not cumulative across
// searches); accumulate across searches with Add.
type Stats struct {
	// BoundsComputed counts lower/upper bound pair evaluations against
	// compressed objects (vantage points and leaf entries) — each is one
	// O(budget) pass over a stored representation.
	BoundsComputed int
	// NodesVisited counts tree nodes traversed (internal nodes and leaves).
	NodesVisited int
	// Candidates counts compressed objects whose lower bound survived the
	// final σ_UB filter and therefore entered the refinement phase.
	Candidates int
	// FullRetrievals counts uncompressed sequences fetched from the
	// sequence store during refinement — the random-I/O cost the index
	// exists to minimize (fig. 23's dominant term on disk).
	FullRetrievals int
	// LBPrunes counts prunes justified by a lower bound: subtrees skipped
	// because every object in them is provably farther than σ_UB
	// (lb > median + σ_UB at an internal node), plus collected candidates
	// discarded at the end of traversal because their lower bound exceeded
	// the final σ_UB.
	LBPrunes int
	// UBPrunes counts subtrees skipped because the query's upper bound at
	// the vantage point proves the far child irrelevant
	// (ub < median − σ_UB at an internal node).
	UBPrunes int
	// GuidedDescentHits counts internal nodes where the §4.1 annulus-overlap
	// heuristic reordered traversal (the right child was visited first).
	GuidedDescentHits int
	// ExactDistances counts exact Euclidean evaluations during refinement,
	// including ones that early-abandoned partway through the sequence.
	ExactDistances int
}

// Add accumulates another search's stats into s, so callers aggregating
// over a query workload (benchmarks, the engine's metrics registry) do not
// hand-sum each field.
func (s *Stats) Add(o Stats) {
	s.BoundsComputed += o.BoundsComputed
	s.NodesVisited += o.NodesVisited
	s.Candidates += o.Candidates
	s.FullRetrievals += o.FullRetrievals
	s.LBPrunes += o.LBPrunes
	s.UBPrunes += o.UBPrunes
	s.GuidedDescentHits += o.GuidedDescentHits
	s.ExactDistances += o.ExactDistances
}

// Result is one neighbour: the sequence ID and its exact Euclidean distance.
type Result struct {
	ID   int
	Dist float64
}

// Build constructs the tree over the given spectra. ids[i] is the sequence
// ID of specs[i] (it must address the same sequence in the seqstore used at
// query time). The returned tree owns an in-memory feature table; use
// Features to obtain it, e.g. for spilling to disk.
//
// Construction runs on up to Options.BuildWorkers goroutines: the feature
// table is compressed in parallel up front (ref = input position) and
// independent subtrees are dispatched to a bounded pool. The result is
// bit-identical for every worker count because each node's vantage-point
// sampling RNG is derived from (Seed, tree path) instead of a shared
// sequential stream.
func Build(specs []*spectral.HalfSpectrum, ids []int, opts Options) (*Tree, error) {
	if len(specs) == 0 {
		return nil, errors.New("vptree: empty input")
	}
	if len(specs) != len(ids) {
		return nil, errors.New("vptree: specs/ids length mismatch")
	}
	opts.fill()
	n := specs[0].N
	for _, s := range specs {
		if s.N != n {
			return nil, spectral.ErrMismatch
		}
	}
	t := &Tree{n: len(specs), seqLen: n, opts: opts}
	if opts.Dynamic {
		t.specByID = make(map[int]*spectral.HalfSpectrum, len(specs))
		for i, s := range specs {
			t.specByID[ids[i]] = s
		}
	}

	feats, err := compressAll(specs, opts)
	if err != nil {
		return nil, err
	}
	t.features = feats
	refs := make([]int, len(specs))
	idx := make([]int, len(specs))
	for i := range idx {
		refs[i] = i
		idx[i] = i
	}
	b := &builder{t: t, specs: specs, ids: ids, refs: refs}
	if opts.BuildWorkers > 1 {
		b.sem = make(chan struct{}, opts.BuildWorkers-1)
	}
	t.root, err = b.build(idx, rootPath)
	if err != nil {
		return nil, err
	}
	t.rebuildFlat()
	return t, nil
}

// compressOne compresses a single spectrum under the tree's options (fixed
// Budget, or the §8 energy-fraction scheme when configured).
func compressOne(spec *spectral.HalfSpectrum, opts Options) (*spectral.Compressed, error) {
	if opts.EnergyFraction > 0 {
		return spectral.CompressEnergy(spec, opts.EnergyFraction)
	}
	return spectral.Compress(spec, opts.Method, opts.Budget)
}

// compressAll builds the feature table up front with feats[i] holding the
// compressed form of specs[i], fanning the independent compressions across
// Options.BuildWorkers goroutines.
func compressAll(specs []*spectral.HalfSpectrum, opts Options) (MemoryFeatures, error) {
	feats := make(MemoryFeatures, len(specs))
	errs := make([]error, len(specs))
	workers := opts.BuildWorkers
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, s := range specs {
			var err error
			if feats[i], err = compressOne(s, opts); err != nil {
				return nil, err
			}
		}
		return feats, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				feats[i], errs[i] = compressOne(specs[i], opts)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs { // first error by input position, deterministically
		if err != nil {
			return nil, err
		}
	}
	return feats, nil
}

// builder carries one construction pass (a full Build or a dynamic leaf
// rebuild). refs[i] is the feature-table ref of specs[i], resolved before
// the recursion starts, so build itself is read-only over shared state and
// sibling subtrees may run concurrently.
type builder struct {
	t     *Tree
	specs []*spectral.HalfSpectrum
	ids   []int
	refs  []int
	salt  uint64        // decorrelates independent passes (leaf rebuilds)
	sem   chan struct{} // spare worker slots; nil ⇒ fully serial
}

// rootPath is the path label of a pass's root node; children are labelled
// 2p (left) and 2p+1 (right), uniquely addressing every tree position.
const rootPath uint64 = 1

// parallelSubtreeMin is the smallest subtree worth a goroutine handoff.
const parallelSubtreeMin = 32

// splitmix64 is the SplitMix64 finalizer, used to turn (seed, salt, path)
// into well-separated RNG streams.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rng returns the sampling RNG for the node at path. Deriving it from the
// tree position rather than threading one stream through the DFS is what
// makes parallel construction deterministic.
func (b *builder) rng(path uint64) *rand.Rand {
	h := splitmix64(uint64(b.t.opts.Seed) ^ splitmix64(b.salt) ^ splitmix64(path))
	return rand.New(rand.NewSource(int64(h)))
}

func (b *builder) leafNode(idx []int) *node {
	nd := &node{leaf: make([]entry, 0, len(idx))}
	for _, i := range idx {
		nd.leaf = append(nd.leaf, entry{id: b.ids[i], ref: b.refs[i]})
	}
	return nd
}

func (b *builder) build(idx []int, path uint64) (*node, error) {
	if len(idx) <= b.t.opts.LeafSize {
		return b.leafNode(idx), nil
	}

	vpPos, err := b.t.selectVP(b.specs, idx, b.rng(path))
	if err != nil {
		return nil, err
	}
	vp := idx[vpPos]
	// Remove the vantage point from the working set.
	idx[vpPos] = idx[len(idx)-1]
	rest := idx[:len(idx)-1]

	// Exact distances to the vantage point (construction uses uncompressed
	// representations, §4.1).
	dists := make([]float64, len(rest))
	for i, j := range rest {
		d, err := spectral.Distance(b.specs[vp], b.specs[j])
		if err != nil {
			return nil, err
		}
		dists[i] = d
	}
	median := medianOf(dists)

	var leftIdx, rightIdx []int
	for i, j := range rest {
		if dists[i] <= median {
			leftIdx = append(leftIdx, j)
		} else {
			rightIdx = append(rightIdx, j)
		}
	}
	// Degenerate split (many ties at the median): fall back to a leaf to
	// guarantee progress.
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		all := append(append([]int{vp}, leftIdx...), rightIdx...)
		return b.leafNode(all), nil
	}

	nd := &node{vpID: b.ids[vp], vpRef: b.refs[vp], median: median}

	// Hand the right subtree to a pooled goroutine when a slot is free and
	// the subtree is big enough to amortize the handoff; otherwise recurse
	// serially. Either way the result is the same tree.
	if b.sem != nil && len(rightIdx) >= parallelSubtreeMin {
		select {
		case b.sem <- struct{}{}:
			var (
				wg   sync.WaitGroup
				rnd  *node
				rerr error
			)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-b.sem }()
				rnd, rerr = b.build(rightIdx, 2*path+1)
			}()
			lnd, lerr := b.build(leftIdx, 2*path)
			wg.Wait()
			if lerr != nil {
				return nil, lerr
			}
			if rerr != nil {
				return nil, rerr
			}
			nd.left, nd.right = lnd, rnd
			return nd, nil
		default:
		}
	}
	if nd.left, err = b.build(leftIdx, 2*path); err != nil {
		return nil, err
	}
	if nd.right, err = b.build(rightIdx, 2*path+1); err != nil {
		return nil, err
	}
	return nd, nil
}

// selectVP implements the §4.1 heuristic: among sampled candidates pick the
// one with the highest standard deviation of distances to sampled objects —
// "an analogue of the largest eigenvector in SVD decomposition".
func (t *Tree) selectVP(specs []*spectral.HalfSpectrum, idx []int, rng *rand.Rand) (int, error) {
	nc := t.opts.Candidates
	if nc > len(idx) {
		nc = len(idx)
	}
	ns := t.opts.Sample
	if ns > len(idx)-1 {
		ns = len(idx) - 1
	}
	bestPos, bestSpread := 0, -1.0
	for c := 0; c < nc; c++ {
		pos := rng.Intn(len(idx))
		cand := idx[pos]
		var sum, sumSq float64
		count := 0
		for s := 0; s < ns; s++ {
			other := idx[rng.Intn(len(idx))]
			if other == cand {
				continue
			}
			d, err := spectral.Distance(specs[cand], specs[other])
			if err != nil {
				return 0, err
			}
			sum += d
			sumSq += d * d
			count++
		}
		if count == 0 {
			continue
		}
		mean := sum / float64(count)
		spread := sumSq/float64(count) - mean*mean
		if spread > bestSpread {
			bestSpread, bestPos = spread, pos
		}
	}
	return bestPos, nil
}

func medianOf(x []float64) float64 {
	cp := append([]float64(nil), x...)
	sort.Float64s(cp)
	m := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[m]
	}
	return (cp[m-1] + cp[m]) / 2
}

// Len returns the number of indexed sequences.
func (t *Tree) Len() int { return t.n }

// SeqLen returns the indexed sequence length.
func (t *Tree) SeqLen() int { return t.seqLen }

// Features returns the in-memory feature table built alongside the tree.
func (t *Tree) Features() MemoryFeatures { return t.features }

// Height returns the height of the tree (a single leaf has height 1).
func (t *Tree) Height() int { return height(t.root) }

func height(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf != nil {
		return 1
	}
	l, r := height(n.left), height(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// candidate is a compressed object that survived traversal.
type candidate struct {
	id     int
	lb, ub float64
}

// Search returns the k nearest neighbours of the query values, refining
// candidates against the full sequences in store. feats resolves compressed
// features (pass t.Features() for the in-memory configuration or a
// DiskFeatures for the on-disk one).
func (t *Tree) Search(query []float64, k int, feats FeatureSource, store seqstore.Store) ([]Result, Stats, error) {
	res, st, _, err := t.search(query, k, feats, store, nil, nil, false)
	return res, st, err
}

// SearchPointer is Search forced onto the pointer-tree scalar path,
// bypassing the flat kernels even when available. It exists as the reference
// implementation for the flat≡pointer equivalence harness and benchmarks;
// results and Stats are identical to Search by construction.
func (t *Tree) SearchPointer(query []float64, k int, feats FeatureSource, store seqstore.Store) ([]Result, Stats, error) {
	res, st, _, err := t.search(query, k, feats, store, nil, nil, true)
	return res, st, err
}

// SearchPointerLimited is SearchLimited forced onto the pointer-tree path
// (the reference twin of the flat path, for equivalence testing).
func (t *Tree) SearchPointerLimited(query []float64, k int, feats FeatureSource, store seqstore.Store, g *lifecycle.Gate) (res []Result, st Stats, truncated bool, err error) {
	return t.search(query, k, feats, store, g, nil, true)
}

// SearchLimited is Search under a request-lifecycle gate: cancellation is
// checked at node-visit granularity (an expired context aborts with its
// error within a bounded number of bound computations) and budget
// exhaustion stops traversal gracefully, refining up to k collected
// candidates and returning the best-so-far neighbours with truncated=true.
// A nil gate makes it identical to Search.
func (t *Tree) SearchLimited(query []float64, k int, feats FeatureSource, store seqstore.Store, g *lifecycle.Gate) (res []Result, st Stats, truncated bool, err error) {
	return t.search(query, k, feats, store, g, nil, false)
}

// SearchExplain runs Search while additionally collecting a structured
// explain report: per-level traversal accounting, per-bound prune
// attribution and phase timings. The result and stats are identical to a
// plain Search; the extra cost is a nil check per node on the plain path
// and bookkeeping only when explaining.
func (t *Tree) SearchExplain(query []float64, k int, feats FeatureSource, store seqstore.Store) ([]Result, Stats, *Explain, error) {
	exp := &Explain{
		K:           k,
		Method:      t.opts.Method.String(),
		Budget:      t.opts.Budget,
		PaperBounds: t.opts.PaperBounds,
		TreeSize:    t.n,
		TreeHeight:  t.Height(),
	}
	res, st, _, err := t.search(query, k, feats, store, nil, exp, false)
	exp.Stats = st
	return res, st, exp, err
}

func (t *Tree) search(query []float64, k int, feats FeatureSource, store seqstore.Store, g *lifecycle.Gate, exp *Explain, forcePointer bool) ([]Result, Stats, bool, error) {
	var st Stats
	if k < 1 {
		return nil, st, false, errors.New("vptree: k must be >= 1")
	}
	if len(query) != t.seqLen {
		return nil, st, false, spectral.ErrMismatch
	}
	if err := g.Check(); err != nil {
		return nil, st, false, err
	}
	hq, err := spectral.FromValues(query)
	if err != nil {
		return nil, st, false, err
	}

	var phase time.Time
	if exp != nil {
		phase = time.Now()
	}
	// Phase 1: traverse, collecting candidates and shrinking σ_UB.
	s := &searcher{
		t: t, hq: hq, k: k, feats: feats, st: &st, exp: exp, g: g,
		ctx:     spectral.NewQueryContext(hq),
		sigmaUB: math.Inf(1),
	}
	// The flat batched-kernel path handles every plain search over the tree's
	// own in-memory feature table; explain runs, foreign feature sources
	// (disk) and explicit pointer requests use the pointer tree. Both paths
	// produce bit-identical results and Stats (see flat.go).
	if !forcePointer && exp == nil && t.flat != nil && t.flat.covers(feats) {
		s.lbBuf = make([]float64, t.flat.maxLeaf)
		s.ubBuf = make([]float64, t.flat.maxLeaf)
		err = s.visitFlat(t.flat, 0)
		s.flushKernelCounters()
	} else {
		err = s.visit(t.root, 0)
	}
	if err != nil {
		return nil, st, false, err
	}
	// A budget that expired during traversal still grants refinement of up
	// to k collected candidates (bounded overrun), so a truncated search
	// returns genuinely refined best-so-far neighbours instead of nothing.
	if g.Truncated() {
		g.Grace(k)
	}

	if exp != nil {
		now := time.Now()
		exp.TraverseMS = float64(now.Sub(phase)) / float64(time.Millisecond)
		exp.Collected = len(s.cands)
		exp.SigmaUB = s.sigmaUB
		phase = now
	}

	// Phase 2: prune by the k-th smallest upper bound (maintained during
	// traversal as σ_UB) and refine in increasing lower-bound order with
	// early abandoning (fig. 11 NNSearch).
	// ε-relaxation: filter against σ_UB/(1+ε) instead of σ_UB. A candidate
	// dropped in the relaxed band carries a proven floor (its own lower
	// bound), recorded on the gate so BoundGap stays sound. At ε=0 the
	// relaxed radius IS σ_UB and the filter is bit-identical to exact.
	sub := s.sigmaUB
	rsub := g.Relax(sub)
	pruned := s.cands[:0]
	for _, c := range s.cands {
		if c.lb <= rsub {
			pruned = append(pruned, c)
		} else {
			if c.lb <= sub {
				g.MarkRelaxed(c.lb)
			}
			st.LBPrunes++
			if exp != nil {
				exp.FilterLBPrunes++
			}
		}
	}
	st.Candidates = len(pruned)
	slices.SortFunc(pruned, func(a, b candidate) int {
		switch {
		case a.lb < b.lb:
			return -1
		case a.lb > b.lb:
			return 1
		default:
			return 0
		}
	})
	// δ sampled-stop: refine only the first ⌈(1−δ)·n⌉ of the lb-sorted
	// candidates (never fewer than k). The skipped tail's smallest lower
	// bound — the first skipped entry, by sort order — is its proven floor.
	if cut := g.DeltaCut(len(pruned), k); cut < len(pruned) {
		g.MarkRelaxed(pruned[cut].lb)
		pruned = pruned[:cut]
	}
	if exp != nil {
		now := time.Now()
		exp.FilterMS = float64(now.Sub(phase)) / float64(time.Millisecond)
		phase = now
	}

	best := newKBest(k)
	buf := make([]float64, t.seqLen)
	for ci, c := range pruned {
		// ε-relaxed cutoff: stop once every remaining lower bound exceeds
		// worst/(1+ε). A cutoff that would not have fired at ε=0 records
		// the skipped candidate's lower bound as the proven floor.
		if w := best.worst(); best.full() && c.lb > g.Relax(w) {
			if c.lb <= w {
				g.MarkRelaxed(c.lb)
			}
			if exp != nil {
				exp.CutoffSkips = len(pruned) - ci
			}
			break // every later candidate has an even larger lower bound
		}
		if ok, gerr := g.Exact(); gerr != nil {
			return nil, st, false, gerr
		} else if !ok {
			break // budget exhausted: keep the neighbours refined so far
		}
		if err := store.GetInto(c.id, buf); err != nil {
			return nil, st, false, fmt.Errorf("vptree: refine id %d: %w", c.id, err)
		}
		st.FullRetrievals++
		bound := best.worst()
		if !best.full() {
			bound = math.Inf(1)
		}
		st.ExactDistances++
		d, abandoned, err := series.EuclideanEarlyAbandon(query, buf, bound)
		if err != nil {
			return nil, st, false, err
		}
		if abandoned {
			if exp != nil {
				exp.EarlyAbandons++
			}
		} else {
			best.offer(Result{ID: c.id, Dist: d})
		}
	}
	if exp != nil {
		exp.FullRetrievals = st.FullRetrievals
		exp.ExactDistances = st.ExactDistances
		exp.RefineMS = float64(time.Since(phase)) / float64(time.Millisecond)
	}
	return best.sorted(), st, g.Truncated(), nil
}

type searcher struct {
	t       *Tree
	hq      *spectral.HalfSpectrum
	ctx     *spectral.QueryContext
	g       *lifecycle.Gate // nil ⇒ unlimited
	k       int
	feats   FeatureSource
	st      *Stats
	exp     *Explain // nil on the plain (non-explained) path
	cands   []candidate
	sigmaUB float64
	ubTop   []float64 // max-heap of the k smallest upper bounds seen
	// lbBuf/ubBuf are the per-search kernel output buffers (flat path only),
	// sized to the largest leaf block so BoundsBlock never allocates.
	lbBuf, ubBuf []float64
	// kBlocks/kEvals/kBlocksPruned are this search's flat-kernel counters,
	// flushed once to the tree's atomics at the end of traversal.
	kBlocks, kEvals, kBlocksPruned int64
}

// bounds evaluates the query bounds against a stored compressed object.
func (s *searcher) bounds(ref int) (lb, ub float64, err error) {
	c, err := s.feats.Feature(ref)
	if err != nil {
		return 0, 0, err
	}
	s.st.BoundsComputed++
	if s.t.opts.PaperBounds {
		return c.BoundsFast(s.ctx)
	}
	return c.SafeBoundsFast(s.ctx)
}

// add records a candidate and updates σ_UB (the k-th smallest upper bound of
// any candidate seen so far — with k=1 exactly the paper's best-so-far σ_UB).
func (s *searcher) add(id int, lb, ub float64) {
	s.cands = append(s.cands, candidate{id: id, lb: lb, ub: ub})
	if len(s.ubTop) < s.k {
		s.ubTop = append(s.ubTop, ub)
		siftUpMax(s.ubTop, len(s.ubTop)-1)
		if len(s.ubTop) == s.k {
			s.sigmaUB = s.ubTop[0]
		}
	} else if ub < s.ubTop[0] {
		s.ubTop[0] = ub
		siftDownMax(s.ubTop, 0)
		s.sigmaUB = s.ubTop[0]
	}
}

func siftUpMax(h []float64, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p] >= h[i] {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDownMax(h []float64, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h) && h[l] > h[big] {
			big = l
		}
		if r < len(h) && h[r] > h[big] {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// lvl returns the explain row for depth (nil off the explained path).
func (s *searcher) lvl(depth int) *LevelExplain {
	if s.exp == nil {
		return nil
	}
	return s.exp.level(depth)
}

// ubPrune reports whether a subtree whose objects are all at vantage-point
// distance ≥ median can be discarded given the query↔vp upper bound ub —
// the paper's σ_UB prune applied at the gate's ε-relaxed radius. When only
// the relaxed radius fires (an exact search would have descended) the
// proven floor σ_UB/(1+ε) is recorded on the gate, keeping the response's
// BoundGap sound. At ε=0 the relaxed radius IS σ_UB and the decision is
// bit-identical to exact.
func (s *searcher) ubPrune(ub, median float64) bool {
	r := s.g.Relax(s.sigmaUB)
	if ub >= median-r {
		return false
	}
	if ub >= median-s.sigmaUB {
		s.g.MarkRelaxed(r)
	}
	return true
}

// lbPrune is ubPrune's twin for subtrees whose objects are all at
// vantage-point distance ≤ median, keyed on the query↔vp lower bound lb.
func (s *searcher) lbPrune(lb, median float64) bool {
	r := s.g.Relax(s.sigmaUB)
	if lb <= median+r {
		return false
	}
	if lb <= median+s.sigmaUB {
		s.g.MarkRelaxed(r)
	}
	return true
}

func (s *searcher) visit(nd *node, depth int) error {
	if nd == nil {
		return nil
	}
	// Lifecycle gate: an expired context aborts the traversal with its
	// error; an exhausted budget stops descending (sticky, so the unwind is
	// O(depth)) and leaves the candidates collected so far for refinement.
	if ok, err := s.g.Visit(); err != nil {
		return err
	} else if !ok {
		return nil
	}
	s.st.NodesVisited++
	if nd.leaf != nil {
		if !s.g.Leaf() {
			return nil // ng leaf budget exhausted: stop collecting, keep best-so-far
		}
		if l := s.lvl(depth); l != nil {
			l.Leaves++
			l.BoundsComputed += len(nd.leaf)
			l.Candidates += len(nd.leaf)
		}
		for _, e := range nd.leaf {
			lb, ub, err := s.bounds(e.ref)
			if err != nil {
				return err
			}
			s.add(e.id, lb, ub)
		}
		return nil
	}
	lb, ub, err := s.bounds(nd.vpRef)
	if err != nil {
		return err
	}
	if l := s.lvl(depth); l != nil {
		l.InternalNodes++
		l.BoundsComputed++
	}
	// Tombstoned vantage points still route (the median invariant is about
	// their geometric position) but never appear as candidates.
	if !nd.vpDeleted {
		if l := s.lvl(depth); l != nil {
			l.Candidates++
		}
		s.add(nd.vpID, lb, ub)
	}

	switch {
	case s.ubPrune(ub, nd.median):
		// Every right-subtree object is provably farther than the (relaxed)
		// pruning radius.
		s.st.UBPrunes++
		if l := s.lvl(depth); l != nil {
			l.UBSubtreePrunes++
		}
		return s.visit(nd.left, depth+1)
	case s.lbPrune(lb, nd.median):
		// Every left-subtree object is provably farther than the (relaxed)
		// pruning radius.
		s.st.LBPrunes++
		if l := s.lvl(depth); l != nil {
			l.LBSubtreePrunes++
		}
		return s.visit(nd.right, depth+1)
	default:
		// Guided descent (§4.1): follow first the child whose region
		// overlaps the [lb,ub] annulus more.
		first, second := nd.left, nd.right
		if !s.t.opts.NoGuidedDescent {
			overlapLeft := math.Min(ub, nd.median) - lb
			overlapRight := ub - math.Max(lb, nd.median)
			if overlapRight > overlapLeft {
				first, second = nd.right, nd.left
				s.st.GuidedDescentHits++
				if l := s.lvl(depth); l != nil {
					l.GuidedDescentHits++
				}
			}
		}
		if err := s.visit(first, depth+1); err != nil {
			return err
		}
		// Re-check prunability of the second child with the tightened σ_UB.
		if second == nd.right && s.ubPrune(ub, nd.median) {
			s.st.UBPrunes++
			if l := s.lvl(depth); l != nil {
				l.UBSubtreePrunes++
			}
			return nil
		}
		if second == nd.left && s.lbPrune(lb, nd.median) {
			s.st.LBPrunes++
			if l := s.lvl(depth); l != nil {
				l.LBSubtreePrunes++
			}
			return nil
		}
		return s.visit(second, depth+1)
	}
}

// kBest keeps the k smallest exact results seen so far.
type kBest struct {
	k   int
	res []Result
}

func newKBest(k int) *kBest { return &kBest{k: k} }

func (b *kBest) full() bool { return len(b.res) >= b.k }

// worst returns the current k-th best distance (+Inf while not full).
func (b *kBest) worst() float64 {
	if !b.full() {
		return math.Inf(1)
	}
	return b.res[len(b.res)-1].Dist
}

// offer inserts r keeping the k smallest results in canonical
// (Dist, ID) lexicographic order. Ranking ties by ID makes the result
// set independent of refinement order — and therefore of tree shape —
// which is what lets a sharded engine's per-shard top-k lists merge to
// exactly the single-engine answer (see internal/shard).
func (b *kBest) offer(r Result) {
	pos := sort.Search(len(b.res), func(i int) bool {
		return b.res[i].Dist > r.Dist || (b.res[i].Dist == r.Dist && b.res[i].ID > r.ID)
	})
	b.res = append(b.res, Result{})
	copy(b.res[pos+1:], b.res[pos:])
	b.res[pos] = r
	if len(b.res) > b.k {
		b.res = b.res[:b.k]
	}
}

func (b *kBest) sorted() []Result { return b.res }
