package vptree

import (
	"testing"

	"repro/internal/querylog"
	"repro/internal/seqstore"
	"repro/internal/spectral"
)

// equalNodes compares two subtrees structurally: same vantage points,
// medians, leaf contents and shape. Used to prove the parallel build is
// bit-identical to the serial one.
func equalNodes(t *testing.T, path string, a, b *node) bool {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Errorf("%s: nil mismatch (%v vs %v)", path, a == nil, b == nil)
		return false
	}
	if a == nil {
		return true
	}
	if a.vpID != b.vpID || a.vpRef != b.vpRef || a.median != b.median || a.vpDeleted != b.vpDeleted {
		t.Errorf("%s: node differs: {id %d ref %d med %v} vs {id %d ref %d med %v}",
			path, a.vpID, a.vpRef, a.median, b.vpID, b.vpRef, b.median)
		return false
	}
	if (a.leaf == nil) != (b.leaf == nil) || len(a.leaf) != len(b.leaf) {
		t.Errorf("%s: leaf shape differs (%d vs %d entries)", path, len(a.leaf), len(b.leaf))
		return false
	}
	for i := range a.leaf {
		if a.leaf[i] != b.leaf[i] {
			t.Errorf("%s: leaf entry %d differs: %+v vs %+v", path, i, a.leaf[i], b.leaf[i])
			return false
		}
	}
	return equalNodes(t, path+"L", a.left, b.left) && equalNodes(t, path+"R", a.right, b.right)
}

func buildSpecs(t *testing.T, n, seqLen int, seed int64) ([]*spectral.HalfSpectrum, []int, *seqstore.Memory, [][]float64) {
	t.Helper()
	g := querylog.NewGenerator(querylog.DefaultStart, seqLen, seed)
	data := querylog.StandardizeAll(g.Dataset(n))
	store, err := seqstore.NewMemory(seqLen)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]*spectral.HalfSpectrum, n)
	ids := make([]int, n)
	for i, s := range data {
		if ids[i], err = store.Append(s.Values); err != nil {
			t.Fatal(err)
		}
		if specs[i], err = spectral.FromValues(s.Values); err != nil {
			t.Fatal(err)
		}
	}
	var queries [][]float64
	for _, q := range querylog.StandardizeAll(g.Queries(4)) {
		queries = append(queries, q.Values)
	}
	return specs, ids, store, queries
}

// TestParallelBuildDeterministic: the bounded-pool parallel build must
// produce a tree identical to the serial build for any worker count — same
// vantage point choices (per-node RNG is derived from the node's path, not
// from goroutine scheduling), same medians, same leaves.
func TestParallelBuildDeterministic(t *testing.T) {
	// 200 series exceeds parallelSubtreeMin at several levels, so the
	// parallel path actually dispatches goroutines.
	specs, ids, store, queries := buildSpecs(t, 200, 128, 42)
	defer store.Close()

	serial, err := Build(specs, ids, Options{Budget: 8, Seed: 5, BuildWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := Build(specs, ids, Options{Budget: 8, Seed: 5, BuildWorkers: workers})
		if err != nil {
			t.Fatalf("BuildWorkers=%d: %v", workers, err)
		}
		if !equalNodes(t, "•", serial.root, par.root) {
			t.Fatalf("BuildWorkers=%d: tree structure differs from serial build", workers)
		}
		if serial.Height() != par.Height() || serial.Len() != par.Len() {
			t.Errorf("BuildWorkers=%d: height/len differ", workers)
		}
		// Identical trees must do identical search work.
		for qi, q := range queries {
			rs, ss, err := serial.Search(q, 5, serial.Features(), store)
			if err != nil {
				t.Fatal(err)
			}
			rp, sp, err := par.Search(q, 5, par.Features(), store)
			if err != nil {
				t.Fatal(err)
			}
			if len(rs) != len(rp) {
				t.Fatalf("BuildWorkers=%d query %d: %d vs %d results", workers, qi, len(rs), len(rp))
			}
			for i := range rs {
				if rs[i] != rp[i] {
					t.Errorf("BuildWorkers=%d query %d result %d: %+v vs %+v", workers, qi, i, rs[i], rp[i])
				}
			}
			if ss != sp {
				t.Errorf("BuildWorkers=%d query %d: stats differ: %+v vs %+v", workers, qi, ss, sp)
			}
		}
	}
}

// TestParallelBuildMatchesBruteForce: sanity that a parallel-built tree is
// not just self-consistent but correct.
func TestParallelBuildMatchesBruteForce(t *testing.T) {
	specs, ids, store, queries := buildSpecs(t, 80, 64, 9)
	defer store.Close()
	values := make([][]float64, len(ids))
	for i, id := range ids {
		v := make([]float64, store.SeqLen())
		if err := store.GetInto(id, v); err != nil {
			t.Fatal(err)
		}
		values[i] = v
	}
	tree, err := Build(specs, ids, Options{Budget: 8, BuildWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		got, _, err := tree.Search(q, 3, tree.Features(), store)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(t, values, q, 3)
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Errorf("result %d: ID %d, want %d", i, got[i].ID, want[i].ID)
			}
		}
	}
}
