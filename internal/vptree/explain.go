package vptree

// LevelExplain is the per-depth accounting of one explained search: how the
// traversal spent its work at each level of the tree (depth 0 is the root).
type LevelExplain struct {
	Depth int `json:"depth"`
	// InternalNodes and Leaves count nodes visited at this depth.
	InternalNodes int `json:"internal_nodes"`
	Leaves        int `json:"leaves"`
	// BoundsComputed counts lower/upper bound pair evaluations at this depth
	// (one per vantage point plus one per leaf entry).
	BoundsComputed int `json:"bounds_computed"`
	// Candidates counts compressed objects collected at this depth.
	Candidates int `json:"candidates"`
	// LBSubtreePrunes and UBSubtreePrunes count subtrees skipped at this
	// depth because the lower bound (lb > median + σ_UB) or the upper bound
	// (ub < median − σ_UB) proved a child irrelevant.
	LBSubtreePrunes int `json:"lb_subtree_prunes"`
	UBSubtreePrunes int `json:"ub_subtree_prunes"`
	// GuidedDescentHits counts internal nodes at this depth where the §4.1
	// annulus-overlap heuristic visited the right child first.
	GuidedDescentHits int `json:"guided_descent_hits"`
}

// Explain is the structured report of one explained search: where the
// candidates came from level by level, which bound each prune is attributed
// to, and how the refinement phase disposed of the survivors. The candidate
// accounting is exact:
//
//	Collected = FilterLBPrunes + CutoffSkips + FullRetrievals
//
// i.e. every compressed object collected during traversal is either pruned
// by the final lower-bound filter, skipped when the sorted refinement loop
// hit a lower bound above the best exact distance, or fetched in full.
type Explain struct {
	// K is the requested neighbour count.
	K int `json:"k"`
	// Method and Budget describe the compressed representation the bounds
	// were evaluated against (e.g. "BestMinError" vs the GEMINI/Wang
	// baselines selected via Options.Method).
	Method string `json:"method"`
	Budget int    `json:"budget"`
	// PaperBounds reports whether the fig. 9 bounds (true) or the provably
	// sound SafeBounds (false) were used.
	PaperBounds bool `json:"paper_bounds"`
	// TreeSize and TreeHeight describe the index that was searched.
	TreeSize   int `json:"tree_size"`
	TreeHeight int `json:"tree_height"`

	// Levels is the per-depth traversal accounting (index = depth).
	Levels []LevelExplain `json:"levels"`

	// Collected counts compressed objects collected during traversal
	// (vantage points + leaf entries whose bounds were taken as candidates).
	Collected int `json:"collected"`
	// FilterLBPrunes counts collected candidates discarded by the final
	// σ_UB lower-bound filter before refinement.
	FilterLBPrunes int `json:"filter_lb_prunes"`
	// CutoffSkips counts surviving candidates never fetched because the
	// refinement loop's lower-bound cutoff broke first.
	CutoffSkips int `json:"cutoff_skips"`
	// FullRetrievals counts uncompressed sequences fetched for refinement.
	FullRetrievals int `json:"full_retrievals"`
	// ExactDistances and EarlyAbandons count exact Euclidean evaluations
	// during refinement and how many of them abandoned early.
	ExactDistances int `json:"exact_distances"`
	EarlyAbandons  int `json:"early_abandons"`
	// SigmaUB is the final pruning threshold (the k-th smallest candidate
	// upper bound seen during traversal).
	SigmaUB float64 `json:"sigma_ub"`

	// TraverseMS, FilterMS and RefineMS are the wall times of the three
	// search phases.
	TraverseMS float64 `json:"traverse_ms"`
	FilterMS   float64 `json:"filter_ms"`
	RefineMS   float64 `json:"refine_ms"`

	// Stats is the flat per-search work summary (same totals the engine
	// promotes into cumulative counters).
	Stats Stats `json:"stats"`
}

// level returns the accounting row for depth d, growing Levels as needed.
func (e *Explain) level(d int) *LevelExplain {
	for len(e.Levels) <= d {
		e.Levels = append(e.Levels, LevelExplain{Depth: len(e.Levels)})
	}
	return &e.Levels[d]
}

// TotalSubtreePrunes sums the per-level subtree prunes attributed to each
// bound.
func (e *Explain) TotalSubtreePrunes() (lb, ub int) {
	for _, l := range e.Levels {
		lb += l.LBSubtreePrunes
		ub += l.UBSubtreePrunes
	}
	return lb, ub
}

// Balanced reports whether the candidate accounting identity holds:
// Collected = FilterLBPrunes + CutoffSkips + FullRetrievals.
func (e *Explain) Balanced() bool {
	return e.Collected == e.FilterLBPrunes+e.CutoffSkips+e.FullRetrievals
}
