package vptree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/querylog"
	"repro/internal/seqstore"
	"repro/internal/series"
	"repro/internal/spectral"
)

// dynFixture builds a dynamic tree over the first `initial` series of a
// generated pool and keeps the rest for later inserts.
type dynFixture struct {
	store   *seqstore.Memory
	tree    *Tree
	values  map[int][]float64 // live id -> values
	pool    [][]float64       // not yet inserted
	poolIDs []int
	queries [][]float64
}

func buildDynFixture(t testing.TB, initial, extra, seqLen int, seed int64) *dynFixture {
	t.Helper()
	g := querylog.NewGenerator(querylog.DefaultStart, seqLen, seed)
	data := querylog.StandardizeAll(g.Dataset(initial + extra))
	qs := querylog.StandardizeAll(g.Queries(3))
	store, err := seqstore.NewMemory(seqLen)
	if err != nil {
		t.Fatal(err)
	}
	fx := &dynFixture{store: store, values: map[int][]float64{}}
	specs := make([]*spectral.HalfSpectrum, 0, initial)
	ids := make([]int, 0, initial)
	for i, s := range data {
		id, err := store.Append(s.Values)
		if err != nil {
			t.Fatal(err)
		}
		if i < initial {
			h, err := spectral.FromValues(s.Values)
			if err != nil {
				t.Fatal(err)
			}
			specs = append(specs, h)
			ids = append(ids, id)
			fx.values[id] = s.Values
		} else {
			fx.pool = append(fx.pool, s.Values)
			fx.poolIDs = append(fx.poolIDs, id)
		}
	}
	fx.tree, err = Build(specs, ids, Options{Budget: 10, Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		fx.queries = append(fx.queries, q.Values)
	}
	return fx
}

// verify checks that every query's kNN over the tree matches brute force
// over the live set.
func (fx *dynFixture) verify(t *testing.T, k int) {
	t.Helper()
	for qi, q := range fx.queries {
		type pair struct {
			id int
			d  float64
		}
		var brute []pair
		for id, v := range fx.values {
			d, err := series.Euclidean(q, v)
			if err != nil {
				t.Fatal(err)
			}
			brute = append(brute, pair{id, d})
		}
		sort.Slice(brute, func(a, b int) bool { return brute[a].d < brute[b].d })
		kk := k
		if kk > len(brute) {
			kk = len(brute)
		}
		got, _, err := fx.tree.Search(q, k, fx.tree.Features(), fx.store)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != kk {
			t.Fatalf("query %d: got %d results, want %d", qi, len(got), kk)
		}
		for i := 0; i < kk; i++ {
			if math.Abs(got[i].Dist-brute[i].d) > 1e-9 {
				t.Fatalf("query %d rank %d: %v vs brute %v", qi, i, got[i].Dist, brute[i].d)
			}
		}
	}
}

func TestStaticTreeRejectsUpdates(t *testing.T) {
	fx := buildFixture(t, 20, 64, Options{Budget: 8}, 30)
	h, _ := spectral.FromValues(make([]float64, 64))
	if err := fx.tree.Insert(h, 999); err != ErrStatic {
		t.Errorf("Insert on static tree: %v", err)
	}
	if _, err := fx.tree.Delete(0); err != ErrStatic {
		t.Errorf("Delete on static tree: %v", err)
	}
}

func TestDynamicInsert(t *testing.T) {
	fx := buildDynFixture(t, 40, 30, 128, 31)
	fx.verify(t, 3)
	for i, v := range fx.pool {
		h, err := spectral.FromValues(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := fx.tree.Insert(h, fx.poolIDs[i]); err != nil {
			t.Fatal(err)
		}
		fx.values[fx.poolIDs[i]] = v
	}
	if fx.tree.Len() != 70 {
		t.Fatalf("Len = %d, want 70", fx.tree.Len())
	}
	fx.verify(t, 5)
	for _, id := range fx.poolIDs {
		if !fx.tree.Contains(id) {
			t.Errorf("inserted id %d not found", id)
		}
	}
}

func TestDynamicInsertErrors(t *testing.T) {
	fx := buildDynFixture(t, 10, 1, 64, 32)
	wrong, _ := spectral.FromValues(make([]float64, 32))
	if err := fx.tree.Insert(wrong, 500); err != spectral.ErrMismatch {
		t.Errorf("wrong-length insert: %v", err)
	}
	h, _ := spectral.FromValues(fx.values[0])
	if err := fx.tree.Insert(h, 0); err != ErrDuplicateID {
		t.Errorf("duplicate insert: %v", err)
	}
}

func TestDynamicDelete(t *testing.T) {
	fx := buildDynFixture(t, 50, 0, 128, 33)
	// Delete a third of the objects (a mix of leaves and vantage points).
	rng := rand.New(rand.NewSource(1))
	deleted := 0
	for id := range fx.values {
		if rng.Intn(3) == 0 {
			ok, err := fx.tree.Delete(id)
			if err != nil || !ok {
				t.Fatalf("Delete(%d) = %v, %v", id, ok, err)
			}
			delete(fx.values, id)
			deleted++
		}
	}
	if fx.tree.Len() != 50-deleted {
		t.Fatalf("Len = %d, want %d", fx.tree.Len(), 50-deleted)
	}
	fx.verify(t, 4)
	// Deleting again fails.
	for id := 0; id < 50; id++ {
		if _, live := fx.values[id]; !live {
			ok, err := fx.tree.Delete(id)
			if err != nil || ok {
				t.Fatalf("double delete(%d) = %v, %v", id, ok, err)
			}
			if fx.tree.Contains(id) {
				t.Errorf("deleted id %d still Contains", id)
			}
		}
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	fx := buildDynFixture(t, 30, 0, 64, 34)
	ok, err := fx.tree.Delete(5)
	if err != nil || !ok {
		t.Fatal(err)
	}
	v := fx.values[5]
	delete(fx.values, 5)
	fx.verify(t, 3)
	h, err := spectral.FromValues(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.tree.Insert(h, 5); err != nil {
		t.Fatal(err)
	}
	fx.values[5] = v
	fx.verify(t, 3)
}

// Property: any interleaving of inserts and deletes keeps search exact.
func TestDynamicWorkloadProperty(t *testing.T) {
	f := func(seed int64) bool {
		fx := buildDynFixture(t, 25, 25, 64, seed)
		rng := rand.New(rand.NewSource(seed))
		poolNext := 0
		for op := 0; op < 40; op++ {
			if poolNext < len(fx.pool) && (rng.Intn(2) == 0 || len(fx.values) < 5) {
				v := fx.pool[poolNext]
				id := fx.poolIDs[poolNext]
				poolNext++
				h, err := spectral.FromValues(v)
				if err != nil {
					return false
				}
				if err := fx.tree.Insert(h, id); err != nil {
					t.Log(err)
					return false
				}
				fx.values[id] = v
			} else {
				// Delete a random live id.
				for id := range fx.values {
					ok, err := fx.tree.Delete(id)
					if err != nil || !ok {
						t.Logf("delete(%d): %v %v", id, ok, err)
						return false
					}
					delete(fx.values, id)
					break
				}
			}
		}
		if fx.tree.Len() != len(fx.values) {
			t.Logf("Len %d vs live %d", fx.tree.Len(), len(fx.values))
			return false
		}
		// Exactness after the workload.
		q := fx.queries[0]
		got, _, err := fx.tree.Search(q, 3, fx.tree.Features(), fx.store)
		if err != nil {
			t.Log(err)
			return false
		}
		bestD := math.Inf(1)
		for _, v := range fx.values {
			d, _ := series.Euclidean(q, v)
			if d < bestD {
				bestD = d
			}
		}
		return len(got) > 0 && math.Abs(got[0].Dist-bestD) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDynamicInsert(b *testing.B) {
	g := querylog.NewGenerator(querylog.DefaultStart, 256, 35)
	data := querylog.StandardizeAll(g.Dataset(64))
	specs := make([]*spectral.HalfSpectrum, len(data))
	ids := make([]int, len(data))
	for i, s := range data {
		var err error
		if specs[i], err = spectral.FromValues(s.Values); err != nil {
			b.Fatal(err)
		}
		ids[i] = i
	}
	tree, err := Build(specs, ids, Options{Budget: 10, Dynamic: true})
	if err != nil {
		b.Fatal(err)
	}
	extra := querylog.StandardizeAll(g.Dataset(1))[0]
	h, err := spectral.FromValues(extra.Values)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(h, 1000+i); err != nil {
			b.Fatal(err)
		}
	}
}
