package vptree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"repro/internal/spectral"
)

// DiskFeatures stores compressed representations in a flat file and decodes
// them on demand — the "index on disk" configuration of fig. 23, where every
// bound computation pays a feature read. Record offsets are kept in memory
// (they are tiny: 8 bytes per object).
//
// Record layout (little endian):
//
//	uint8   method
//	uint32  N
//	uint16  k (number of kept coefficients)
//	float64 minPower
//	float64 err
//	k × { uint16 position, float64 re, float64 im }
//
// The offset/size tables are immutable after WriteFeatures and every read
// is a positioned ReadAt into a per-call buffer, so Feature never takes a
// lock: parallel search workers fetch features without serializing.
type DiskFeatures struct {
	f       *os.File
	offsets []int64
	sizes   []int32
	reads   atomic.Int64
}

const featMagic = uint32(0x53514654) // "SQFT"

// WriteFeatures writes the feature table to path and returns the handle.
func WriteFeatures(path string, feats []*spectral.Compressed) (*DiskFeatures, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("vptree: create features: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], featMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(feats)))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	d := &DiskFeatures{f: f, offsets: make([]int64, len(feats)), sizes: make([]int32, len(feats))}
	off := int64(len(hdr))
	for i, c := range feats {
		rec := encodeFeature(c)
		if _, err := f.WriteAt(rec, off); err != nil {
			f.Close()
			return nil, fmt.Errorf("vptree: write feature %d: %w", i, err)
		}
		d.offsets[i] = off
		d.sizes[i] = int32(len(rec))
		off += int64(len(rec))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

func encodeFeature(c *spectral.Compressed) []byte {
	k := len(c.Positions)
	rec := make([]byte, 1+4+2+8+8+k*(2+16))
	rec[0] = byte(c.Method)
	binary.LittleEndian.PutUint32(rec[1:], uint32(c.N))
	binary.LittleEndian.PutUint16(rec[5:], uint16(k))
	binary.LittleEndian.PutUint64(rec[7:], math.Float64bits(c.MinPower))
	binary.LittleEndian.PutUint64(rec[15:], math.Float64bits(c.Err))
	p := 23
	for i := 0; i < k; i++ {
		binary.LittleEndian.PutUint16(rec[p:], uint16(c.Positions[i]))
		binary.LittleEndian.PutUint64(rec[p+2:], math.Float64bits(real(c.Coeffs[i])))
		binary.LittleEndian.PutUint64(rec[p+10:], math.Float64bits(imag(c.Coeffs[i])))
		p += 18
	}
	return rec
}

func decodeFeature(rec []byte) (*spectral.Compressed, error) {
	if len(rec) < 23 {
		return nil, errors.New("vptree: short feature record")
	}
	c := &spectral.Compressed{
		Method:   spectral.Method(rec[0]),
		N:        int(binary.LittleEndian.Uint32(rec[1:])),
		MinPower: math.Float64frombits(binary.LittleEndian.Uint64(rec[7:])),
		Err:      math.Float64frombits(binary.LittleEndian.Uint64(rec[15:])),
	}
	k := int(binary.LittleEndian.Uint16(rec[5:]))
	if len(rec) != 23+k*18 {
		return nil, errors.New("vptree: feature record size mismatch")
	}
	c.Positions = make([]int, k)
	c.Coeffs = make([]complex128, k)
	p := 23
	for i := 0; i < k; i++ {
		c.Positions[i] = int(binary.LittleEndian.Uint16(rec[p:]))
		re := math.Float64frombits(binary.LittleEndian.Uint64(rec[p+2:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(rec[p+10:]))
		c.Coeffs[i] = complex(re, im)
		p += 18
	}
	return c, nil
}

// Feature implements FeatureSource.
func (d *DiskFeatures) Feature(ref int) (*spectral.Compressed, error) {
	d.reads.Add(1)
	if ref < 0 || ref >= len(d.offsets) {
		return nil, fmt.Errorf("vptree: feature ref %d out of range", ref)
	}
	rec := make([]byte, d.sizes[ref])
	if _, err := d.f.ReadAt(rec, d.offsets[ref]); err != nil {
		return nil, fmt.Errorf("vptree: read feature %d: %w", ref, err)
	}
	return decodeFeature(rec)
}

// NumFeatures implements FeatureSource.
func (d *DiskFeatures) NumFeatures() int { return len(d.offsets) }

// Reads returns the number of feature reads served.
func (d *DiskFeatures) Reads() int64 { return d.reads.Load() }

// Close releases the underlying file.
func (d *DiskFeatures) Close() error { return d.f.Close() }

var _ FeatureSource = (*DiskFeatures)(nil)
