package vptree

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/spectral"
)

// Persistence: a built tree (structure + compressed features) can be saved
// to a single file and reopened later without re-reading, re-transforming
// or re-compressing the raw sequences — construction cost is paid once, as
// the paper's S2 tool does by storing "the compressed features locally".
// Loaded trees are static (no retained spectra); rebuild in Dynamic mode if
// updates are needed.
//
// File layout (little endian):
//
//	magic "SQVP", version u32
//	method u8, budget u32, leafSize u32, seqLen u32, n u32
//	featureCount u32, then per feature: recLen u32 + encodeFeature record
//	node section, preorder:
//	  tag u8 (1 = leaf, 2 = internal)
//	  leaf:     count u32, then count × { id u32, ref u32 }
//	  internal: id u32, ref u32, deleted u8, median f64, left, right

const (
	persistMagic   = uint32(0x53515650) // "SQVP"
	persistVersion = uint32(1)
	tagLeaf        = byte(1)
	tagInternal    = byte(2)
)

// ErrCorrupt is returned when a tree file fails validation.
var ErrCorrupt = errors.New("vptree: corrupt tree file")

// Save writes the tree and its feature table to path.
func (t *Tree) Save(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vptree: save: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriter(f)

	writeU32 := func(v uint32) { binary.Write(w, binary.LittleEndian, v) }
	writeU32(persistMagic)
	writeU32(persistVersion)
	w.WriteByte(byte(t.opts.Method))
	writeU32(uint32(t.opts.Budget))
	writeU32(uint32(t.opts.LeafSize))
	writeU32(uint32(t.seqLen))
	writeU32(uint32(t.n))

	writeU32(uint32(len(t.features)))
	for _, c := range t.features {
		rec := encodeFeature(c)
		writeU32(uint32(len(rec)))
		w.Write(rec)
	}
	if err := writeNode(w, t.root); err != nil {
		return err
	}
	return w.Flush()
}

func writeNode(w *bufio.Writer, nd *node) error {
	if nd == nil {
		return errors.New("vptree: nil node during save")
	}
	if nd.leaf != nil {
		w.WriteByte(tagLeaf)
		binary.Write(w, binary.LittleEndian, uint32(len(nd.leaf)))
		for _, e := range nd.leaf {
			binary.Write(w, binary.LittleEndian, uint32(e.id))
			binary.Write(w, binary.LittleEndian, uint32(e.ref))
		}
		return nil
	}
	w.WriteByte(tagInternal)
	binary.Write(w, binary.LittleEndian, uint32(nd.vpID))
	binary.Write(w, binary.LittleEndian, uint32(nd.vpRef))
	del := byte(0)
	if nd.vpDeleted {
		del = 1
	}
	w.WriteByte(del)
	binary.Write(w, binary.LittleEndian, math.Float64bits(nd.median))
	if err := writeNode(w, nd.left); err != nil {
		return err
	}
	return writeNode(w, nd.right)
}

// Load reopens a tree saved with Save. The result answers queries (static
// mode) against the same seqstore IDs it was built with.
func Load(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("vptree: load: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)

	var magic, version uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, ErrCorrupt
	}
	if magic != persistMagic {
		return nil, ErrCorrupt
	}
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil || version != persistVersion {
		return nil, ErrCorrupt
	}
	method, err := r.ReadByte()
	if err != nil {
		return nil, ErrCorrupt
	}
	var budget, leafSize, seqLen, n uint32
	for _, p := range []*uint32{&budget, &leafSize, &seqLen, &n} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, ErrCorrupt
		}
	}
	t := &Tree{
		n:      int(n),
		seqLen: int(seqLen),
		opts: Options{
			Method:   spectral.Method(method),
			Budget:   int(budget),
			LeafSize: int(leafSize),
		},
	}
	t.opts.fill()

	var featCount uint32
	if err := binary.Read(r, binary.LittleEndian, &featCount); err != nil {
		return nil, ErrCorrupt
	}
	if featCount > 1<<28 {
		return nil, ErrCorrupt
	}
	t.features = make(MemoryFeatures, 0, featCount)
	for i := uint32(0); i < featCount; i++ {
		var recLen uint32
		if err := binary.Read(r, binary.LittleEndian, &recLen); err != nil {
			return nil, ErrCorrupt
		}
		if recLen > 1<<24 {
			return nil, ErrCorrupt
		}
		rec := make([]byte, recLen)
		if _, err := io.ReadFull(r, rec); err != nil {
			return nil, ErrCorrupt
		}
		c, err := decodeFeature(rec)
		if err != nil {
			return nil, fmt.Errorf("vptree: load feature %d: %w", i, err)
		}
		t.features = append(t.features, c)
	}
	if t.root, err = readNode(r, len(t.features)); err != nil {
		return nil, err
	}
	// The stream must be fully consumed.
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, ErrCorrupt
	}
	t.rebuildFlat()
	return t, nil
}

func readNode(r *bufio.Reader, featCount int) (*node, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return nil, ErrCorrupt
	}
	switch tag {
	case tagLeaf:
		var count uint32
		if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
			return nil, ErrCorrupt
		}
		if count > 1<<24 {
			return nil, ErrCorrupt
		}
		nd := &node{leaf: make([]entry, 0, count)}
		for i := uint32(0); i < count; i++ {
			var id, ref uint32
			if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
				return nil, ErrCorrupt
			}
			if err := binary.Read(r, binary.LittleEndian, &ref); err != nil {
				return nil, ErrCorrupt
			}
			if int(ref) >= featCount {
				return nil, ErrCorrupt
			}
			nd.leaf = append(nd.leaf, entry{id: int(id), ref: int(ref)})
		}
		return nd, nil
	case tagInternal:
		var id, ref uint32
		if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
			return nil, ErrCorrupt
		}
		if err := binary.Read(r, binary.LittleEndian, &ref); err != nil {
			return nil, ErrCorrupt
		}
		if int(ref) >= featCount {
			return nil, ErrCorrupt
		}
		del, err := r.ReadByte()
		if err != nil {
			return nil, ErrCorrupt
		}
		var medBits uint64
		if err := binary.Read(r, binary.LittleEndian, &medBits); err != nil {
			return nil, ErrCorrupt
		}
		nd := &node{
			vpID:      int(id),
			vpRef:     int(ref),
			vpDeleted: del != 0,
			median:    math.Float64frombits(medBits),
		}
		if nd.left, err = readNode(r, featCount); err != nil {
			return nil, err
		}
		if nd.right, err = readNode(r, featCount); err != nil {
			return nil, err
		}
		return nd, nil
	default:
		return nil, ErrCorrupt
	}
}
