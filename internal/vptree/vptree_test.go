package vptree

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/querylog"
	"repro/internal/seqstore"
	"repro/internal/series"
	"repro/internal/spectral"
)

// fixture builds a standardized dataset, its spectra, a memory store and a
// tree.
type fixture struct {
	values  [][]float64
	store   *seqstore.Memory
	tree    *Tree
	queries [][]float64
}

func buildFixture(t testing.TB, n, seqLen int, opts Options, seed int64) *fixture {
	t.Helper()
	g := querylog.NewGenerator(querylog.DefaultStart, seqLen, seed)
	data := querylog.StandardizeAll(g.Dataset(n))
	qs := querylog.StandardizeAll(g.Queries(5))
	store, err := seqstore.NewMemory(seqLen)
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{store: store}
	specs := make([]*spectral.HalfSpectrum, n)
	ids := make([]int, n)
	for i, s := range data {
		id, err := store.Append(s.Values)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		fx.values = append(fx.values, s.Values)
		if specs[i], err = spectral.FromValues(s.Values); err != nil {
			t.Fatal(err)
		}
	}
	fx.tree, err = Build(specs, ids, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		fx.queries = append(fx.queries, q.Values)
	}
	return fx
}

// bruteKNN is the exact reference answer.
func bruteKNN(t testing.TB, values [][]float64, q []float64, k int) []Result {
	t.Helper()
	res := make([]Result, 0, len(values))
	for id, v := range values {
		d, err := series.Euclidean(q, v)
		if err != nil {
			t.Fatal(err)
		}
		res = append(res, Result{ID: id, Dist: d})
	}
	sort.Slice(res, func(a, b int) bool { return res[a].Dist < res[b].Dist })
	if k > len(res) {
		k = len(res)
	}
	return res[:k]
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, nil, Options{}); err == nil {
		t.Error("expected error on empty input")
	}
	h, _ := spectral.FromValues(make([]float64, 8))
	if _, err := Build([]*spectral.HalfSpectrum{h}, []int{0, 1}, Options{}); err == nil {
		t.Error("expected error on ids mismatch")
	}
	h2, _ := spectral.FromValues(make([]float64, 16))
	if _, err := Build([]*spectral.HalfSpectrum{h, h2}, []int{0, 1}, Options{}); err == nil {
		t.Error("expected error on length mismatch")
	}
}

func TestSearchErrors(t *testing.T) {
	fx := buildFixture(t, 20, 64, Options{Budget: 8}, 1)
	if _, _, err := fx.tree.Search(fx.queries[0], 0, fx.tree.Features(), fx.store); err == nil {
		t.Error("expected error for k=0")
	}
	if _, _, err := fx.tree.Search(make([]float64, 10), 1, fx.tree.Features(), fx.store); err == nil {
		t.Error("expected error for wrong query length")
	}
}

func TestOneNNMatchesLinearScan(t *testing.T) {
	fx := buildFixture(t, 120, 128, Options{Budget: 12}, 2)
	for qi, q := range fx.queries {
		want := bruteKNN(t, fx.values, q, 1)[0]
		got, st, err := fx.tree.Search(q, 1, fx.tree.Features(), fx.store)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 {
			t.Fatalf("query %d: got %d results", qi, len(got))
		}
		if math.Abs(got[0].Dist-want.Dist) > 1e-9 {
			t.Errorf("query %d: 1NN dist %v (id %d), want %v (id %d)",
				qi, got[0].Dist, got[0].ID, want.Dist, want.ID)
		}
		if st.FullRetrievals == 0 || st.BoundsComputed == 0 {
			t.Errorf("query %d: stats not collected: %+v", qi, st)
		}
	}
}

func TestKNNMatchesLinearScan(t *testing.T) {
	fx := buildFixture(t, 150, 128, Options{Budget: 16}, 3)
	for _, k := range []int{1, 3, 10} {
		for qi, q := range fx.queries {
			want := bruteKNN(t, fx.values, q, k)
			got, _, err := fx.tree.Search(q, k, fx.tree.Features(), fx.store)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != k {
				t.Fatalf("k=%d query %d: got %d results", k, qi, len(got))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Errorf("k=%d query %d rank %d: dist %v, want %v",
						k, qi, i, got[i].Dist, want[i].Dist)
				}
			}
			// Results must be sorted ascending.
			for i := 1; i < len(got); i++ {
				if got[i].Dist < got[i-1].Dist {
					t.Errorf("k=%d query %d: unsorted results", k, qi)
				}
			}
		}
	}
}

// Property: exact kNN equality against brute force across random datasets,
// budgets and methods.
func TestExactnessProperty(t *testing.T) {
	f := func(seed int64, budgetRaw, methodRaw uint8) bool {
		budget := 4 + int(budgetRaw)%20
		method := spectral.Methods()[int(methodRaw)%5]
		fx := buildFixture(t, 60, 64, Options{Budget: budget, Method: method, Seed: seed%100 + 1}, seed)
		q := fx.queries[0]
		want := bruteKNN(t, fx.values, q, 3)
		got, _, err := fx.tree.Search(q, 3, fx.tree.Features(), fx.store)
		if err != nil {
			t.Log(err)
			return false
		}
		for i := range want {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Logf("method %v budget %d: rank %d got %v want %v",
					method, budget, i, got[i].Dist, want[i].Dist)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestKLargerThanDataset(t *testing.T) {
	fx := buildFixture(t, 10, 64, Options{Budget: 8}, 4)
	got, _, err := fx.tree.Search(fx.queries[0], 25, fx.tree.Features(), fx.store)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("got %d results, want all 10", len(got))
	}
}

func TestPruningActuallyPrunes(t *testing.T) {
	// With a reasonable budget the index must examine far fewer full
	// sequences than the dataset size (the paper's core efficiency claim).
	fx := buildFixture(t, 400, 256, Options{Budget: 24}, 5)
	totalRetrieved := 0
	for _, q := range fx.queries {
		_, st, err := fx.tree.Search(q, 1, fx.tree.Features(), fx.store)
		if err != nil {
			t.Fatal(err)
		}
		totalRetrieved += st.FullRetrievals
	}
	perQuery := float64(totalRetrieved) / float64(len(fx.queries))
	if perQuery > 0.5*400 {
		t.Errorf("avg full retrievals per query = %v of 400; pruning ineffective", perQuery)
	}
	t.Logf("avg full retrievals per 1NN query: %.1f / 400", perQuery)
}

func TestPaperBoundsModeStillExactOnRealisticData(t *testing.T) {
	// With fig. 9 bounds (paper-faithful) results should still match brute
	// force on realistic data (violations were only adversarial).
	fx := buildFixture(t, 100, 128, Options{Budget: 16, PaperBounds: true}, 6)
	for _, q := range fx.queries {
		want := bruteKNN(t, fx.values, q, 1)[0]
		got, _, err := fx.tree.Search(q, 1, fx.tree.Features(), fx.store)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[0].Dist-want.Dist) > 1e-9 {
			t.Errorf("paper bounds: got %v want %v", got[0].Dist, want.Dist)
		}
	}
}

func TestHeightIsLogarithmic(t *testing.T) {
	fx := buildFixture(t, 256, 64, Options{Budget: 8, LeafSize: 4}, 7)
	h := fx.tree.Height()
	if h < 4 || h > 40 {
		t.Errorf("height %d for 256 items looks degenerate", h)
	}
	if fx.tree.Len() != 256 || fx.tree.SeqLen() != 64 {
		t.Errorf("Len/SeqLen = %d/%d", fx.tree.Len(), fx.tree.SeqLen())
	}
}

func TestDuplicatePointsHandled(t *testing.T) {
	// Identical sequences force degenerate splits; the build must still
	// terminate and search must still be exact.
	seqLen := 32
	store, _ := seqstore.NewMemory(seqLen)
	rng := rand.New(rand.NewSource(8))
	base := make([]float64, seqLen)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	var specs []*spectral.HalfSpectrum
	var ids []int
	var values [][]float64
	for i := 0; i < 30; i++ {
		v := append([]float64(nil), base...)
		if i >= 20 { // ten distinct stragglers
			v[i%seqLen] += 5
		}
		id, _ := store.Append(v)
		h, err := spectral.FromValues(v)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, h)
		ids = append(ids, id)
		values = append(values, v)
	}
	tree, err := Build(specs, ids, Options{Budget: 6})
	if err != nil {
		t.Fatal(err)
	}
	q := append([]float64(nil), base...)
	q[0] += 0.01
	want := bruteKNN(t, values, q, 5)
	got, _, err := tree.Search(q, 5, tree.Features(), store)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Errorf("rank %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestDiskFeaturesRoundTrip(t *testing.T) {
	fx := buildFixture(t, 60, 64, Options{Budget: 8}, 9)
	path := filepath.Join(t.TempDir(), "features.bin")
	disk, err := WriteFeatures(path, fx.tree.Features())
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if disk.NumFeatures() != len(fx.tree.Features()) {
		t.Fatalf("NumFeatures = %d", disk.NumFeatures())
	}
	for ref, want := range fx.tree.Features() {
		got, err := disk.Feature(ref)
		if err != nil {
			t.Fatal(err)
		}
		if got.Method != want.Method || got.N != want.N ||
			got.MinPower != want.MinPower || got.Err != want.Err {
			t.Fatalf("ref %d: header mismatch: %+v vs %+v", ref, got, want)
		}
		if len(got.Positions) != len(want.Positions) {
			t.Fatalf("ref %d: k mismatch", ref)
		}
		for i := range want.Positions {
			if got.Positions[i] != want.Positions[i] || got.Coeffs[i] != want.Coeffs[i] {
				t.Fatalf("ref %d coeff %d mismatch", ref, i)
			}
		}
	}
	if disk.Reads() == 0 {
		t.Error("read counter not advancing")
	}
	if _, err := disk.Feature(-1); err == nil {
		t.Error("expected error for bad ref")
	}
	if _, err := disk.Feature(disk.NumFeatures()); err == nil {
		t.Error("expected error for out-of-range ref")
	}
}

func TestSearchWithDiskFeaturesMatchesMemory(t *testing.T) {
	fx := buildFixture(t, 80, 128, Options{Budget: 12}, 10)
	disk, err := WriteFeatures(filepath.Join(t.TempDir(), "f.bin"), fx.tree.Features())
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	for _, q := range fx.queries {
		mem, _, err := fx.tree.Search(q, 3, fx.tree.Features(), fx.store)
		if err != nil {
			t.Fatal(err)
		}
		dsk, _, err := fx.tree.Search(q, 3, disk, fx.store)
		if err != nil {
			t.Fatal(err)
		}
		for i := range mem {
			if mem[i].ID != dsk[i].ID || math.Abs(mem[i].Dist-dsk[i].Dist) > 1e-12 {
				t.Errorf("rank %d: memory %+v vs disk %+v", i, mem[i], dsk[i])
			}
		}
	}
}

func TestMemoryFeaturesBadRef(t *testing.T) {
	m := MemoryFeatures{}
	if _, err := m.Feature(0); err == nil {
		t.Error("expected error")
	}
}

func TestKBest(t *testing.T) {
	b := newKBest(3)
	if b.full() || !math.IsInf(b.worst(), 1) {
		t.Error("fresh kBest wrong")
	}
	for _, d := range []float64{5, 1, 9, 3, 2} {
		b.offer(Result{ID: int(d), Dist: d})
	}
	res := b.sorted()
	wantD := []float64{1, 2, 3}
	if len(res) != 3 {
		t.Fatalf("len %d", len(res))
	}
	for i := range wantD {
		if res[i].Dist != wantD[i] {
			t.Errorf("rank %d = %v, want %v", i, res[i].Dist, wantD[i])
		}
	}
	if b.worst() != 3 {
		t.Errorf("worst = %v", b.worst())
	}
}

func TestMedianOf(t *testing.T) {
	if medianOf([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if medianOf([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median wrong")
	}
}

func BenchmarkSearch1NN(b *testing.B) {
	fx := buildFixture(b, 1000, 256, Options{Budget: 16}, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fx.tree.Search(fx.queries[i%len(fx.queries)], 1, fx.tree.Features(), fx.store); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild500(b *testing.B) {
	g := querylog.NewGenerator(querylog.DefaultStart, 256, 12)
	data := querylog.StandardizeAll(g.Dataset(500))
	specs := make([]*spectral.HalfSpectrum, len(data))
	ids := make([]int, len(data))
	for i, s := range data {
		var err error
		if specs[i], err = spectral.FromValues(s.Values); err != nil {
			b.Fatal(err)
		}
		ids[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(specs, ids, Options{Budget: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// Regression: Options{Budget: n} without an explicit Method must default to
// BestMinError (Method's zero value is reserved as "unset", not GEMINI —
// an earlier bug silently built GEMINI trees for such options).
func TestDefaultMethodIsBestMinError(t *testing.T) {
	fx := buildFixture(t, 20, 64, Options{Budget: 8}, 60)
	for ref, c := range fx.tree.Features() {
		if c.Method != spectral.BestMinError {
			t.Fatalf("feature %d compressed with %v, want BestMinError", ref, c.Method)
		}
	}
	// An explicit GEMINI request must be honored, not overwritten.
	fx2 := buildFixture(t, 20, 64, Options{Budget: 8, Method: spectral.GEMINI}, 61)
	if got := fx2.tree.Features()[0].Method; got != spectral.GEMINI {
		t.Fatalf("explicit GEMINI became %v", got)
	}
}
