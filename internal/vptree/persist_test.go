package vptree

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	fx := buildFixture(t, 120, 128, Options{Budget: 12}, 50)
	path := filepath.Join(t.TempDir(), "tree.bin")
	if err := fx.tree.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != fx.tree.Len() || loaded.SeqLen() != fx.tree.SeqLen() {
		t.Fatalf("Len/SeqLen: %d/%d vs %d/%d",
			loaded.Len(), loaded.SeqLen(), fx.tree.Len(), fx.tree.SeqLen())
	}
	if loaded.Height() != fx.tree.Height() {
		t.Errorf("height %d vs %d", loaded.Height(), fx.tree.Height())
	}
	// Searches on the loaded tree return identical answers.
	for _, q := range fx.queries {
		want, _, err := fx.tree.Search(q, 3, fx.tree.Features(), fx.store)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := loaded.Search(q, 3, loaded.Features(), fx.store)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("result count %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
				t.Errorf("rank %d: %+v vs %+v", i, got[i], want[i])
			}
		}
	}
}

func TestSaveLoadWithTombstones(t *testing.T) {
	fx := buildDynFixture(t, 40, 0, 64, 51)
	// Delete a handful (some become tombstoned vantage points).
	for id := 0; id < 10; id++ {
		if _, err := fx.tree.Delete(id); err != nil {
			t.Fatal(err)
		}
		delete(fx.values, id)
	}
	path := filepath.Join(t.TempDir(), "tree.bin")
	if err := fx.tree.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 30 {
		t.Fatalf("loaded Len = %d, want 30", loaded.Len())
	}
	// Deleted objects never surface in results.
	got, _, err := loaded.Search(fx.queries[0], 30, loaded.Features(), fx.store)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("got %d results, want 30 live objects", len(got))
	}
	for _, r := range got {
		if r.ID < 10 {
			t.Errorf("deleted id %d resurfaced", r.ID)
		}
	}
	// Loaded trees are static.
	if _, err := loaded.Delete(15); err != ErrStatic {
		t.Errorf("Delete on loaded tree: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, []byte("not a tree file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("expected error for garbage file")
	}
	if _, err := Load(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("expected error for missing file")
	}
	// Truncated valid file.
	fx := buildFixture(t, 20, 64, Options{Budget: 6}, 52)
	good := filepath.Join(dir, "good.bin")
	if err := fx.tree.Save(good); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{10, len(data) / 2, len(data) - 3} {
		trunc := filepath.Join(dir, "trunc.bin")
		if err := os.WriteFile(trunc, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(trunc); err == nil {
			t.Errorf("expected error for file truncated at %d", cut)
		}
	}
	// Trailing junk.
	junk := filepath.Join(dir, "junk.bin")
	if err := os.WriteFile(junk, append(data, 0xFF), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(junk); err == nil {
		t.Error("expected error for trailing junk")
	}
}

func TestSaveLoadEnergyFractionTree(t *testing.T) {
	fx := buildFixture(t, 50, 64, Options{EnergyFraction: 0.9}, 53)
	path := filepath.Join(t.TempDir(), "etree.bin")
	if err := fx.tree.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	q := fx.queries[0]
	want, _, err := fx.tree.Search(q, 1, fx.tree.Features(), fx.store)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := loaded.Search(q, 1, loaded.Features(), fx.store)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != want[0].ID || math.Abs(got[0].Dist-want[0].Dist) > 1e-12 {
		t.Errorf("%+v vs %+v", got[0], want[0])
	}
}
