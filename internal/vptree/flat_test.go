package vptree

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/lifecycle"
	"repro/internal/querylog"
	"repro/internal/seqstore"
	"repro/internal/spectral"
)

// sameResults asserts two result lists are identical (IDs, distances, order).
func sameResults(t *testing.T, label string, flat, ptr []Result) {
	t.Helper()
	if len(flat) != len(ptr) {
		t.Fatalf("%s: flat returned %d results, pointer %d", label, len(flat), len(ptr))
	}
	for i := range flat {
		if flat[i] != ptr[i] {
			t.Fatalf("%s: result %d differs: flat %+v vs pointer %+v", label, i, flat[i], ptr[i])
		}
	}
}

// The flat batched-kernel path must be indistinguishable from the pointer
// path: identical neighbours, identical distances, identical Stats — over
// randomized trees covering varied sizes, leaf widths, duplicate values
// (duplicate distances) and k ≥ n edge cases. 100 trials.
func TestFlatSearchMatchesPointer100Trials(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		n := 8 + rng.Intn(120)
		leaf := 2 + rng.Intn(30) // spans the 16–64-entry block regime at the top end
		opts := Options{
			LeafSize:    leaf,
			Seed:        int64(trial + 1),
			PaperBounds: trial%4 == 0,
		}
		fx := buildFixture(t, n, 64, opts, int64(trial+7))
		if !fx.tree.FlatEnabled() {
			t.Fatalf("trial %d: flat index missing after build", trial)
		}
		// Duplicate some rows so distance ties exist in the tree.
		if trial%3 == 0 && n > 4 {
			fx.values[1] = fx.values[0]
		}
		k := 1 + rng.Intn(n+4) // sometimes k ≥ n
		q := fx.queries[trial%len(fx.queries)]
		feats := fx.tree.Features()

		resF, stF, err := fx.tree.Search(q, k, feats, fx.store)
		if err != nil {
			t.Fatal(err)
		}
		resP, stP, err := fx.tree.SearchPointer(q, k, feats, fx.store)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "search", resF, resP)
		if stF != stP {
			t.Fatalf("trial %d: stats diverge: flat %+v vs pointer %+v", trial, stF, stP)
		}
	}
}

// Under a lifecycle gate the two paths must also truncate identically: same
// neighbours, same truncated flag, same stats, for node budgets from 1 up.
func TestFlatSearchLimitedEquivalenceUnderBudgets(t *testing.T) {
	fx := buildFixture(t, 80, 64, Options{LeafSize: 8, Seed: 3}, 11)
	feats := fx.tree.Features()
	for _, maxNodes := range []int{1, 2, 3, 5, 8, 13, 21, 100000} {
		for qi, q := range fx.queries {
			gF := lifecycle.NewGate(context.Background(), lifecycle.Limits{MaxNodes: maxNodes})
			resF, stF, truncF, err := fx.tree.SearchLimited(q, 5, feats, fx.store, gF)
			if err != nil {
				t.Fatal(err)
			}
			gP := lifecycle.NewGate(context.Background(), lifecycle.Limits{MaxNodes: maxNodes})
			resP, stP, truncP, err := fx.tree.SearchPointerLimited(q, 5, feats, fx.store, gP)
			if err != nil {
				t.Fatal(err)
			}
			if truncF != truncP {
				t.Fatalf("budget %d query %d: truncated %v vs %v", maxNodes, qi, truncF, truncP)
			}
			sameResults(t, "limited", resF, resP)
			if stF != stP {
				t.Fatalf("budget %d query %d: stats diverge: %+v vs %+v", maxNodes, qi, stF, stP)
			}
		}
	}
}

// A cancelled context must abort the flat path with the same error as the
// pointer path.
func TestFlatSearchCancelledContext(t *testing.T) {
	fx := buildFixture(t, 40, 64, Options{Seed: 5}, 13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := lifecycle.NewGate(ctx, lifecycle.Limits{})
	_, _, _, errF := fx.tree.SearchLimited(fx.queries[0], 3, fx.tree.Features(), fx.store, g)
	g2 := lifecycle.NewGate(ctx, lifecycle.Limits{})
	_, _, _, errP := fx.tree.SearchPointerLimited(fx.queries[0], 3, fx.tree.Features(), fx.store, g2)
	if errF == nil || errP == nil || errF.Error() != errP.Error() {
		t.Fatalf("cancellation errors diverge: flat %v vs pointer %v", errF, errP)
	}
}

// Foreign feature sources (disk features, test doubles) and explain runs
// must fall back to the pointer path; NoFlatKernels must disable the flat
// index outright. The kernel counters only move on genuine flat searches.
func TestFlatRoutingFallbacks(t *testing.T) {
	fx := buildFixture(t, 60, 64, Options{Seed: 9}, 17)
	q := fx.queries[0]

	before := fx.tree.KernelStats()
	if _, _, err := fx.tree.Search(q, 3, fx.tree.Features(), fx.store); err != nil {
		t.Fatal(err)
	}
	after := fx.tree.KernelStats()
	if after.FlatSearches != before.FlatSearches+1 || after.KernelEvals <= before.KernelEvals {
		t.Fatalf("flat search did not advance kernel counters: %+v -> %+v", before, after)
	}
	if after.MaxBlock <= 0 {
		t.Fatalf("expected positive max block, got %d", after.MaxBlock)
	}

	// Disk features: not the arena's table — pointer path, counters frozen.
	path := filepath.Join(t.TempDir(), "feats.bin")
	disk, err := WriteFeatures(path, fx.tree.Features())
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	resD, _, err := fx.tree.Search(q, 3, disk, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	resM, _, err := fx.tree.Search(q, 3, fx.tree.Features(), fx.store)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "disk-vs-memory", resD, resM)
	mid := fx.tree.KernelStats()
	if mid.FlatSearches != after.FlatSearches+1 {
		t.Fatalf("expected exactly the memory search on the flat path, got %+v", mid)
	}

	// Explain: needs per-node attribution — pointer path.
	if _, _, exp, err := fx.tree.SearchExplain(q, 3, fx.tree.Features(), fx.store); err != nil || exp == nil {
		t.Fatalf("explain: %v", err)
	}
	if got := fx.tree.KernelStats(); got.FlatSearches != mid.FlatSearches {
		t.Fatalf("explain search took the flat path: %+v", got)
	}

	// Ablation knob: no flat index at all.
	fxOff := buildFixture(t, 60, 64, Options{Seed: 9, NoFlatKernels: true}, 17)
	if fxOff.tree.FlatEnabled() {
		t.Fatal("NoFlatKernels built a flat index")
	}
	resOff, _, err := fxOff.tree.Search(q, 3, fxOff.tree.Features(), fxOff.store)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "ablation", resOff, resM)
	if got := fxOff.tree.KernelStats(); got.FlatSearches != 0 || got.MaxBlock != 0 {
		t.Fatalf("disabled tree advanced kernel counters: %+v", got)
	}
}

// Dynamic updates rebuild the flat mirror: after inserts (including leaf
// splits) and deletes (including vantage-point tombstones) the flat path
// still exists and still matches the pointer path exactly.
func TestFlatDynamicRebuild(t *testing.T) {
	const seqLen = 64
	fx := buildFixture(t, 30, seqLen, Options{Dynamic: true, LeafSize: 4, Seed: 21}, 23)
	g := querylog.NewGenerator(querylog.DefaultStart, seqLen, 77)
	extra := querylog.StandardizeAll(g.Dataset(25))
	for _, s := range extra {
		id, err := fx.store.Append(s.Values)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := spectral.FromValues(s.Values)
		if err != nil {
			t.Fatal(err)
		}
		if err := fx.tree.Insert(spec, id); err != nil {
			t.Fatal(err)
		}
		if !fx.tree.FlatEnabled() {
			t.Fatalf("flat index lost after insert of id %d", id)
		}
	}
	for _, id := range []int{0, 7, 13} {
		if ok, err := fx.tree.Delete(id); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", id, ok, err)
		}
	}
	if !fx.tree.FlatEnabled() {
		t.Fatal("flat index lost after deletes")
	}
	feats := fx.tree.Features()
	for _, q := range fx.queries {
		resF, stF, err := fx.tree.Search(q, 7, feats, fx.store)
		if err != nil {
			t.Fatal(err)
		}
		resP, stP, err := fx.tree.SearchPointer(q, 7, feats, fx.store)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "dynamic", resF, resP)
		if stF != stP {
			t.Fatalf("dynamic stats diverge: %+v vs %+v", stF, stP)
		}
		for _, r := range resF {
			if r.ID == 0 || r.ID == 7 || r.ID == 13 {
				t.Fatalf("deleted id %d resurfaced", r.ID)
			}
		}
	}
}

// Persisted trees regain the flat path on Load, with identical results.
func TestFlatSurvivesPersistence(t *testing.T) {
	fx := buildFixture(t, 50, 64, Options{Seed: 31}, 37)
	path := filepath.Join(t.TempDir(), "tree.vpt")
	if err := fx.tree.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.FlatEnabled() {
		t.Fatal("loaded tree has no flat index")
	}
	for _, q := range fx.queries {
		resL, _, err := loaded.Search(q, 4, loaded.Features(), fx.store)
		if err != nil {
			t.Fatal(err)
		}
		resO, _, err := fx.tree.SearchPointer(q, 4, fx.tree.Features(), fx.store)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "persisted", resL, resO)
	}
}

// The blocks-pruned counter must account exactly: over one search, blocks
// evaluated plus blocks pruned never exceeds the total leaf blocks, and on
// an unpruned exhaustive search (huge k) every block is evaluated.
func TestFlatBlockAccounting(t *testing.T) {
	fx := buildFixture(t, 100, 64, Options{LeafSize: 8, Seed: 43}, 47)
	totalBlocks := int64(fx.tree.flat.nodes[0].leafBlocks)
	base := fx.tree.KernelStats()
	if _, _, err := fx.tree.Search(fx.queries[0], 200, fx.tree.Features(), fx.store); err != nil {
		t.Fatal(err)
	}
	exhaustive := fx.tree.KernelStats()
	if got := exhaustive.LeafBlocks - base.LeafBlocks; got != totalBlocks {
		t.Fatalf("k≥n search evaluated %d of %d blocks", got, totalBlocks)
	}
	if _, _, err := fx.tree.Search(fx.queries[1], 1, fx.tree.Features(), fx.store); err != nil {
		t.Fatal(err)
	}
	tight := fx.tree.KernelStats()
	ev := tight.LeafBlocks - exhaustive.LeafBlocks
	pr := tight.BlocksPruned - exhaustive.BlocksPruned
	if ev+pr > totalBlocks {
		t.Fatalf("blocks evaluated (%d) + pruned (%d) exceed total (%d)", ev, pr, totalBlocks)
	}
}

// FuzzFlatSearch fuzzes the full flat search pipeline: a tree built from
// fuzz-derived series, searched under fuzz-derived k and node budgets, must
// never panic, must return finite non-negative sorted distances, and must
// agree exactly — results, truncation flag, stats — with the pointer path
// under an identical budget.
func FuzzFlatSearch(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint8(3), uint8(0))
	f.Add([]byte("flat-search-roundtrip"), uint8(1), uint8(5))
	f.Add([]byte{0xff, 0x01, 0x80, 0x7f}, uint8(10), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, budgetRaw uint8) {
		if len(data) == 0 {
			t.Skip()
		}
		const seqLen = 32
		n := 6 + int(data[0])%40
		store, err := seqstore.NewMemory(seqLen)
		if err != nil {
			t.Fatal(err)
		}
		specs := make([]*spectral.HalfSpectrum, n)
		ids := make([]int, n)
		values := make([][]float64, n)
		for i := range specs {
			row := make([]float64, seqLen)
			for j := range row {
				row[j] = float64(int8(data[(i*13+j*7+1)%len(data)]))
			}
			values[i] = row
			if ids[i], err = store.Append(row); err != nil {
				t.Fatal(err)
			}
			if specs[i], err = spectral.FromValues(row); err != nil {
				t.Fatal(err)
			}
		}
		tr, err := Build(specs, ids, Options{LeafSize: 1 + int(data[len(data)-1])%12, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		q := make([]float64, seqLen)
		for j := range q {
			q[j] = float64(int8(data[(j*11+5)%len(data)]))
		}
		k := 1 + int(kRaw)%(n+2)
		maxNodes := int(budgetRaw) % 24 // 0 = unlimited
		gate := func() *lifecycle.Gate {
			return lifecycle.NewGate(context.Background(), lifecycle.Limits{MaxNodes: maxNodes})
		}
		resF, stF, truncF, err := tr.SearchLimited(q, k, tr.Features(), store, gate())
		if err != nil {
			t.Fatalf("flat search: %v", err)
		}
		resP, stP, truncP, err := tr.SearchPointerLimited(q, k, tr.Features(), store, gate())
		if err != nil {
			t.Fatalf("pointer search: %v", err)
		}
		if truncF != truncP || stF != stP || len(resF) != len(resP) {
			t.Fatalf("paths diverge: trunc %v/%v stats %+v/%+v len %d/%d",
				truncF, truncP, stF, stP, len(resF), len(resP))
		}
		prev := 0.0
		for i, r := range resF {
			if r != resP[i] {
				t.Fatalf("result %d: %+v vs %+v", i, r, resP[i])
			}
			if r.Dist < 0 || r.Dist != r.Dist || r.Dist < prev {
				t.Fatalf("result %d: bad distance %v (prev %v)", i, r.Dist, prev)
			}
			prev = r.Dist
		}
	})
}
