package vptree

import (
	"math"
	"sync/atomic"

	"repro/internal/spectral"
)

// flatNode is one tree node in the flat (index-linked, pointer-free) mirror
// of the build tree. Internal nodes reference children by slice index; leaf
// nodes reference a contiguous [leafLo, leafHi) range of leafIDs/leafRefs,
// so a whole leaf is evaluated with one batched kernel call over a
// contiguous refs slice instead of one interface call per entry.
type flatNode struct {
	median float64
	vpID   int
	vpRef  int32
	// left/right are node indices (-1: none); meaningful on internal nodes.
	left, right int32
	// leafLo >= 0 marks a leaf with entries leafIDs[leafLo:leafHi].
	leafLo, leafHi int32
	// leafBlocks counts the leaf nodes in this subtree (itself included when
	// it is a leaf) — the unit of the blocks-pruned kernel counter.
	leafBlocks int32
	vpDeleted  bool
}

// flatIndex is the cache-friendly mirror of a Tree used by the search hot
// path: every node lives in one slice, every leaf's entries are contiguous,
// and every compressed feature is packed into a structure-of-arrays
// spectral.Arena. The pointer tree remains the source of truth for build,
// explain and persistence; the flat index is rebuilt from it (rebuildFlat)
// whenever the structure or feature table changes.
type flatIndex struct {
	nodes    []flatNode
	leafIDs  []int
	leafRefs []int32
	arena    *spectral.Arena
	// src is the exact feature table the arena was packed from; covers
	// compares against it so a search with a *different* FeatureSource (disk
	// features, a test double) falls back to the pointer path.
	src MemoryFeatures
	// maxLeaf is the largest leaf block, sizing the per-search bound buffers.
	maxLeaf int
}

// kernelCounters accumulates flat-kernel work across searches. They are
// tree-lifetime totals (exposed via KernelStats), deliberately separate from
// the per-search Stats struct so existing pointer-vs-flat Stats equality
// holds exactly.
type kernelCounters struct {
	searches     atomic.Int64
	blocks       atomic.Int64
	evals        atomic.Int64
	blocksPruned atomic.Int64
}

// KernelStats is a snapshot of the flat-path kernel counters: how many
// searches took the flat path, how many leaf blocks ran through the batched
// kernel, how many bound evaluations those blocks contained, and how many
// leaf blocks were pruned away without being evaluated.
type KernelStats struct {
	FlatSearches int64 `json:"flat_searches"`
	LeafBlocks   int64 `json:"leaf_blocks"`
	KernelEvals  int64 `json:"kernel_evals"`
	BlocksPruned int64 `json:"blocks_pruned"`
	// MaxBlock is the largest leaf block in the current flat index (0 when
	// the flat path is unavailable).
	MaxBlock int `json:"max_block"`
}

// KernelStats returns the tree's cumulative flat-kernel counters.
func (t *Tree) KernelStats() KernelStats {
	ks := KernelStats{
		FlatSearches: t.kernels.searches.Load(),
		LeafBlocks:   t.kernels.blocks.Load(),
		KernelEvals:  t.kernels.evals.Load(),
		BlocksPruned: t.kernels.blocksPruned.Load(),
	}
	if t.flat != nil {
		ks.MaxBlock = t.flat.maxLeaf
	}
	return ks
}

// FlatEnabled reports whether the tree currently has a flat index (searches
// against the in-memory feature table take the batched kernel path).
func (t *Tree) FlatEnabled() bool { return t.flat != nil }

// rebuildFlat re-derives the flat index from the pointer tree and the
// current feature table. Callers must hold whatever lock protects the tree
// against concurrent searches (the engine rebuilds under its write lock).
// On any failure — mixed feature table, NoFlatKernels — the flat index is
// simply dropped and searches fall back to the pointer path.
func (t *Tree) rebuildFlat() {
	t.flat = nil
	if t.opts.NoFlatKernels || t.root == nil || len(t.features) == 0 {
		return
	}
	arena, err := spectral.NewArena(t.features)
	if err != nil {
		return
	}
	f := &flatIndex{arena: arena, src: t.features}
	f.nodes = make([]flatNode, 0, 2*t.n)
	f.flatten(t.root)
	t.flat = f
}

// flatten appends nd's subtree in DFS pre-order and returns its node index.
func (f *flatIndex) flatten(nd *node) int32 {
	if nd == nil {
		return -1
	}
	i := int32(len(f.nodes))
	f.nodes = append(f.nodes, flatNode{}) // reserve; children append after
	fn := flatNode{
		median: nd.median, vpID: nd.vpID, vpRef: int32(nd.vpRef),
		vpDeleted: nd.vpDeleted, left: -1, right: -1, leafLo: -1, leafHi: -1,
	}
	if nd.leaf != nil {
		fn.leafLo = int32(len(f.leafIDs))
		for _, e := range nd.leaf {
			f.leafIDs = append(f.leafIDs, e.id)
			f.leafRefs = append(f.leafRefs, int32(e.ref))
		}
		fn.leafHi = int32(len(f.leafIDs))
		fn.leafBlocks = 1
		if m := int(fn.leafHi - fn.leafLo); m > f.maxLeaf {
			f.maxLeaf = m
		}
	} else {
		fn.left = f.flatten(nd.left)
		fn.right = f.flatten(nd.right)
		if fn.left >= 0 {
			fn.leafBlocks += f.nodes[fn.left].leafBlocks
		}
		if fn.right >= 0 {
			fn.leafBlocks += f.nodes[fn.right].leafBlocks
		}
	}
	f.nodes[i] = fn
	return i
}

// covers reports whether feats is exactly the feature table this flat index
// was packed from. Identity (not just equal length) matters: the arena holds
// a copy of the coefficients, so a caller substituting a different source —
// DiskFeatures, or a test double with altered features — must get the
// pointer path, which consults feats itself.
func (f *flatIndex) covers(feats FeatureSource) bool {
	mf, ok := feats.(MemoryFeatures)
	if !ok || len(mf) != len(f.src) {
		return false
	}
	return len(mf) == 0 || &mf[0] == &f.src[0]
}

// visitFlat is the flat-path twin of searcher.visit: identical traversal
// order, identical gate accounting (one Visit per node), identical Stats —
// only the bound evaluations run through the arena's batched kernel, whole
// leaf blocks at a time. Bit-identical kernel results (see spectral.Arena)
// make every σ_UB update and prune decision match the pointer path exactly.
func (s *searcher) visitFlat(f *flatIndex, ni int32) error {
	if ni < 0 {
		return nil
	}
	if ok, err := s.g.Visit(); err != nil {
		return err
	} else if !ok {
		return nil
	}
	s.st.NodesVisited++
	nd := &f.nodes[ni]
	if nd.leafLo >= 0 {
		if !s.g.Leaf() {
			return nil // ng leaf budget exhausted: stop collecting, keep best-so-far
		}
		m := int(nd.leafHi - nd.leafLo)
		if m == 0 {
			return nil
		}
		refs := f.leafRefs[nd.leafLo:nd.leafHi]
		if err := f.arena.BoundsBlock(s.ctx, refs, !s.t.opts.PaperBounds, s.lbBuf, s.ubBuf); err != nil {
			return err
		}
		s.st.BoundsComputed += m
		s.kBlocks++
		s.kEvals += int64(m)
		for i := 0; i < m; i++ {
			s.add(f.leafIDs[int(nd.leafLo)+i], s.lbBuf[i], s.ubBuf[i])
		}
		return nil
	}
	lb, ub, err := f.arena.BoundsAt(s.ctx, int(nd.vpRef), !s.t.opts.PaperBounds)
	if err != nil {
		return err
	}
	s.st.BoundsComputed++
	s.kEvals++
	if !nd.vpDeleted {
		s.add(nd.vpID, lb, ub)
	}

	switch {
	case s.ubPrune(ub, nd.median):
		s.st.UBPrunes++
		s.pruneBlocks(f, nd.right)
		return s.visitFlat(f, nd.left)
	case s.lbPrune(lb, nd.median):
		s.st.LBPrunes++
		s.pruneBlocks(f, nd.left)
		return s.visitFlat(f, nd.right)
	default:
		first, second := nd.left, nd.right
		secondIsRight := true
		if !s.t.opts.NoGuidedDescent {
			overlapLeft := math.Min(ub, nd.median) - lb
			overlapRight := ub - math.Max(lb, nd.median)
			if overlapRight > overlapLeft {
				first, second = nd.right, nd.left
				secondIsRight = false
				s.st.GuidedDescentHits++
			}
		}
		if err := s.visitFlat(f, first); err != nil {
			return err
		}
		// Re-check prunability of the second child with the tightened σ_UB.
		if secondIsRight && s.ubPrune(ub, nd.median) {
			s.st.UBPrunes++
			s.pruneBlocks(f, second)
			return nil
		}
		if !secondIsRight && s.lbPrune(lb, nd.median) {
			s.st.LBPrunes++
			s.pruneBlocks(f, second)
			return nil
		}
		return s.visitFlat(f, second)
	}
}

// pruneBlocks credits a subtree prune with the leaf blocks it skipped.
func (s *searcher) pruneBlocks(f *flatIndex, ni int32) {
	if ni >= 0 {
		s.kBlocksPruned += int64(f.nodes[ni].leafBlocks)
	}
}

// flushKernelCounters folds one flat search's local counters into the
// tree-lifetime atomics (one Add per counter per search, not per block).
func (s *searcher) flushKernelCounters() {
	s.t.kernels.searches.Add(1)
	s.t.kernels.blocks.Add(s.kBlocks)
	s.t.kernels.evals.Add(s.kEvals)
	s.t.kernels.blocksPruned.Add(s.kBlocksPruned)
}
