package kleinberg

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/burst"
	"repro/internal/querylog"
)

func TestDetectErrors(t *testing.T) {
	if _, err := Detect(nil, Options{}); err != ErrInput {
		t.Error("expected ErrInput for empty")
	}
	if _, err := Detect([]float64{1, -2}, Options{}); err != ErrInput {
		t.Error("expected ErrInput for negative counts")
	}
}

func TestAllZeroStream(t *testing.T) {
	det, err := Detect(make([]float64, 50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Bursts) != 0 {
		t.Errorf("zero stream produced bursts: %v", det.Bursts)
	}
}

func TestFlatStreamNoBursts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 365)
	for i := range x {
		x[i] = float64(50 + rng.Intn(10)) // mild noise around 55
	}
	det, err := Detect(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Bursts) > 1 {
		t.Errorf("flat stream produced %d bursts: %v", len(det.Bursts), det.Bursts)
	}
}

func TestPlantedBurstDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 365)
	for i := range x {
		x[i] = float64(20 + rng.Intn(8))
	}
	for i := 100; i < 130; i++ {
		x[i] = float64(120 + rng.Intn(20))
	}
	det, err := Detect(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Bursts) == 0 {
		t.Fatal("planted burst missed")
	}
	b := det.Bursts[0]
	if b.Start > 102 || b.End < 127 {
		t.Errorf("burst [%d,%d] does not cover planted [100,129]", b.Start, b.End)
	}
	if det.Weights[0] <= 0 {
		t.Errorf("burst weight %v should be positive", det.Weights[0])
	}
	if det.Lambda1 <= det.Lambda0 {
		t.Error("rates not ordered")
	}
}

func TestStatesMatchBursts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 200)
	for i := range x {
		x[i] = float64(10 + rng.Intn(5))
	}
	for i := 50; i < 60; i++ {
		x[i] += 100
	}
	for i := 150; i < 170; i++ {
		x[i] += 80
	}
	det, err := Detect(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inBurst := make([]bool, len(x))
	for _, b := range det.Bursts {
		for i := b.Start; i <= b.End; i++ {
			inBurst[i] = true
		}
	}
	for i, s := range det.States {
		if (s == 1) != inBurst[i] {
			t.Fatalf("state/burst disagreement at %d", i)
		}
	}
	if len(det.Bursts) != len(det.Weights) {
		t.Fatal("weights not aligned with bursts")
	}
}

// Property: bursts are disjoint, ordered, in range; a higher entry cost
// gamma never yields more *bursts* (the standard exchange argument: if the
// γ₂-optimal path had more entries than the γ₁-optimal one for γ₂ > γ₁,
// swapping them would improve one of the two optima). Burst *days* are not
// monotone — a higher γ can merge two bursts across a dip into one longer
// burst — so only the count is asserted.
func TestInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(300)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(30))
		}
		for b := 0; b < rng.Intn(3); b++ {
			at := rng.Intn(n)
			for i := at; i < at+10+rng.Intn(20) && i < n; i++ {
				x[i] += float64(100 + rng.Intn(50))
			}
		}
		det, err := Detect(x, Options{})
		if err != nil {
			return false
		}
		prevEnd := -1
		for _, b := range det.Bursts {
			if b.Start <= prevEnd || b.End < b.Start || b.End >= n {
				return false
			}
			prevEnd = b.End
		}
		strict, err := Detect(x, Options{Gamma: 5})
		if err != nil {
			return false
		}
		return len(strict.Bursts) <= len(det.Bursts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The two detectors agree on the obvious seasonal bursts of the halloween
// exemplar (raw counts for Kleinberg, standardized for the MA detector).
func TestAgreesWithMADetectorOnHalloween(t *testing.T) {
	s := querylog.New(4).Exemplar(querylog.Halloween)
	kb, err := Detect(s.Values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ma, err := burst.DetectStandardized(s.Values, burst.LongWindow, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(kb.Bursts) == 0 || len(ma.Bursts) == 0 {
		t.Fatalf("detector found nothing: kleinberg %d, MA %d", len(kb.Bursts), len(ma.Bursts))
	}
	// Every strong MA burst (the Octobers) overlaps some Kleinberg burst.
	for _, mb := range ma.Bursts {
		if mb.Len() < 10 {
			continue
		}
		found := false
		for _, k := range kb.Bursts {
			if burst.Overlap(mb, k) > 0 {
				found = true
				break
			}
		}
		if !found {
			mid := s.DateOf((mb.Start + mb.End) / 2)
			t.Errorf("MA burst around %v has no Kleinberg counterpart", mid.Format(time.DateOnly))
		}
	}
}

// The §6 claim: the MA detector is cheaper than the automaton.
func BenchmarkKleinberg1024(b *testing.B) {
	s := querylog.New(5).Exemplar(querylog.Easter)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(s.Values, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMovingAverage1024(b *testing.B) {
	s := querylog.New(5).Exemplar(querylog.Easter)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := burst.DetectStandardized(s.Values, burst.LongWindow, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}
