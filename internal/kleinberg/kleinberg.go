// Package kleinberg implements a two-state burst automaton in the style of
// Kleinberg ("Bursty and hierarchical structure in streams", KDD'02) — the
// comparator the paper's §6 positions its moving-average detector against
// ("our method is also simpler and less computationally intensive than the
// work of [11]").
//
// Kleinberg's original automaton models gaps between documents; for daily
// count series we use the standard batched adaptation: state 0 emits counts
// from a Poisson with the series' base rate λ₀, state 1 from an elevated
// rate λ₁ = s·λ₀, entering the burst state costs γ·ln T, and the optimal
// state sequence is found with a Viterbi dynamic program. Maximal runs of
// state 1 are the bursts, weighted by their total likelihood advantage.
package kleinberg

import (
	"errors"
	"math"

	"repro/internal/burst"
	"repro/internal/stats"
)

// Options tunes the automaton.
type Options struct {
	// S is the rate multiplier of the burst state (λ₁ = S·λ₀); Kleinberg's
	// canonical choice is 2–3. Default 3.
	S float64
	// Gamma scales the state-entry cost γ·ln T. Default 1.
	Gamma float64
}

func (o *Options) fill() {
	if o.S == 0 {
		o.S = 3
	}
	if o.Gamma == 0 {
		o.Gamma = 1
	}
}

// Detection is the automaton's output.
type Detection struct {
	// States[t] is 0 (base) or 1 (burst) on day t.
	States []int
	// Bursts are the maximal state-1 runs, compacted like §6.2 triplets.
	Bursts []burst.Burst
	// Weights[i] is the likelihood advantage of Bursts[i]: the cost saved
	// versus staying in the base state (Kleinberg's burst weight).
	Weights []float64
	// Lambda0 and Lambda1 are the fitted base and burst rates.
	Lambda0, Lambda1 float64
}

// ErrInput is returned for empty or negative-count inputs.
var ErrInput = errors.New("kleinberg: counts must be non-empty and non-negative")

// Detect runs the two-state automaton over daily counts.
func Detect(counts []float64, opts Options) (*Detection, error) {
	n := len(counts)
	if n == 0 {
		return nil, ErrInput
	}
	for _, c := range counts {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, ErrInput
		}
	}
	opts.fill()

	lambda0 := stats.Mean(counts)
	if lambda0 <= 0 {
		// All-zero stream: nothing can burst.
		return &Detection{States: make([]int, n)}, nil
	}
	lambda1 := opts.S * lambda0
	enterCost := opts.Gamma * math.Log(float64(n))

	// Viterbi over 2 states. cost[q] is the best cost ending in state q;
	// choice[t][q] records the predecessor state.
	const inf = math.MaxFloat64 / 4
	cost := [2]float64{0, enterCost}
	choice := make([][2]int8, n)
	for t := 0; t < n; t++ {
		e0 := poissonCost(counts[t], lambda0)
		e1 := poissonCost(counts[t], lambda1)
		var next [2]float64
		// Into state 0: from 0 (free) or from 1 (free — Kleinberg only
		// charges upward transitions).
		if cost[0] <= cost[1] {
			next[0] = cost[0] + e0
			choice[t][0] = 0
		} else {
			next[0] = cost[1] + e0
			choice[t][0] = 1
		}
		// Into state 1: from 1 (free) or from 0 (pay enterCost).
		fromUp := cost[0] + enterCost
		if cost[1] <= fromUp {
			next[1] = cost[1] + e1
			choice[t][1] = 1
		} else {
			next[1] = fromUp + e1
			choice[t][1] = 0
		}
		for q := range next {
			if next[q] > inf {
				next[q] = inf
			}
		}
		cost = next
	}

	// Backtrack.
	det := &Detection{States: make([]int, n), Lambda0: lambda0, Lambda1: lambda1}
	q := 0
	if cost[1] < cost[0] {
		q = 1
	}
	for t := n - 1; t >= 0; t-- {
		det.States[t] = q
		q = int(choice[t][q])
	}

	// Compact state-1 runs into triplets with likelihood weights.
	i := 0
	for i < n {
		if det.States[i] == 0 {
			i++
			continue
		}
		j := i
		sum, weight := 0.0, 0.0
		for j < n && det.States[j] == 1 {
			sum += counts[j]
			weight += poissonCost(counts[j], lambda0) - poissonCost(counts[j], lambda1)
			j++
		}
		det.Bursts = append(det.Bursts, burst.Burst{
			Start: i, End: j - 1, Avg: sum / float64(j-i),
		})
		det.Weights = append(det.Weights, weight)
		i = j
	}
	return det, nil
}

// poissonCost is the negative log-likelihood of observing count x under a
// Poisson rate λ (the x! term is shared by both states but kept so weights
// are true log-likelihood differences... it cancels in differences anyway).
func poissonCost(x, lambda float64) float64 {
	lg, _ := math.Lgamma(x + 1)
	return lambda - x*math.Log(lambda) + lg
}
