#!/bin/sh
# approx_smoke.sh — end-to-end check of the /v2/search quality-dial API
# against the real binary.
#
# Boots cmd/s2, then asserts over live HTTP:
#
#   * a plain /v2/search answer carries the v2 schema (schema_version 2,
#     snake_case fields, bound_gap per result) and is exact by default
#   * an ε-dialled request answers with approximate=true and a finite
#     per-result bound_gap when a shortcut fired
#   * inconsistent quality parameters come back as a structured 400
#     invalid_approx envelope, never a 500
#   * a budgeted progressive request (stream=ndjson) delivers >= 2
#     snapshot frames, strictly increasing seq, exactly one final frame,
#     and monotone non-worsening top-k across consecutive frames
#   * /v1/search advertises its successor via Deprecation + Link headers
#
# Requires curl and jq (both in CI's ubuntu image). Exits non-zero with a
# diagnostic on the first failed assertion.
set -eu

PORT="${APPROX_SMOKE_PORT:-17271}"
ADDR="127.0.0.1:$PORT"
DIR="$(mktemp -d)"
BIN="$DIR/s2"
LOG="$DIR/s2.log"

fail() { echo "approx-smoke: FAIL: $*" >&2; sed 's/^/  s2: /' "$LOG" >&2 || true; exit 1; }

go build -o "$BIN" ./cmd/s2

"$BIN" -n 256 -days 256 -debug-addr "$ADDR" -serve >"$LOG" 2>&1 &
S2_PID=$!
trap 'kill "$S2_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

i=0
until curl -fsS "http://$ADDR/debug/vars" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "server did not come up on $ADDR"
    kill -0 "$S2_PID" 2>/dev/null || fail "server exited early"
    sleep 0.1
done

BODY="$DIR/body.json"

# 1. Exact-by-default v2 answer.
curl -fsS -o "$BODY" "http://$ADDR/v2/search?q=cinema&k=3" \
    || fail "plain /v2/search request failed"
[ "$(jq -r .schema_version "$BODY")" = "2" ] || fail "schema_version != 2"
[ "$(jq -r .approximate "$BODY")" = "false" ] || fail "exact query stamped approximate"
[ "$(jq '.results | length' "$BODY")" = "3" ] || fail "expected 3 results"
[ "$(jq '[.results[].bound_gap] | max' "$BODY")" = "0" ] \
    || fail "exact results carry non-zero bound_gap: $(jq -c '[.results[].bound_gap]' "$BODY")"

# 2. Quality dial engaged: wide ε so a shortcut reliably fires.
curl -fsS -o "$BODY" "http://$ADDR/v2/search?q=cinema&k=3&epsilon=0.5" \
    || fail "epsilon /v2/search request failed"
[ "$(jq -r .epsilon_used "$BODY")" = "0.5" ] || fail "epsilon_used = $(jq -r .epsilon_used "$BODY"), want 0.5"
if [ "$(jq -r .approximate "$BODY")" = "true" ]; then
    jq -e '[.results[].bound_gap] | all(. >= 0)' "$BODY" >/dev/null \
        || fail "approximate results carry negative bound_gap"
fi

# 3. Structured 400 for an inconsistent quality dial.
STATUS="$(curl -s -o "$BODY" -w '%{http_code}' "http://$ADDR/v2/search?q=cinema&epsilon=-1")"
[ "$STATUS" = "400" ] || fail "epsilon=-1 returned HTTP $STATUS, want 400"
[ "$(jq -r .error.code "$BODY")" = "invalid_approx" ] \
    || fail "error code = $(jq -r .error.code "$BODY"), want invalid_approx"

# 4. Progressive answering on a budgeted query: >= 2 frames, ordered seq,
#    one final frame, monotone non-worsening distances at every held rank.
STREAM="$DIR/stream.ndjson"
curl -fsS -o "$STREAM" "http://$ADDR/v2/search?q=cinema&k=5&max_nodes=2000&stream=ndjson" \
    || fail "progressive /v2/search request failed"
FRAMES="$(wc -l < "$STREAM")"
[ "$FRAMES" -ge 2 ] || fail "progressive stream delivered $FRAMES frames, want >= 2"
jq -s -e '[.[].seq] == [range(1; length + 1)]' "$STREAM" >/dev/null \
    || fail "snapshot seq not 1..n: $(jq -c .seq "$STREAM" | tr '\n' ' ')"
[ "$(jq -s '[.[] | select(.final)] | length' "$STREAM")" = "1" ] \
    || fail "stream must carry exactly one final frame"
jq -s -e '.[-1].final' "$STREAM" >/dev/null || fail "last frame not final"
jq -s -e '. as $f
    | all(range(1; $f | length);
        . as $i
        | $f[$i - 1].results as $p
        | $f[$i].results as $n
        | all(range(0; ([($p | length), ($n | length)] | min));
            $n[.].dist <= $p[.].dist))' "$STREAM" >/dev/null \
    || fail "progressive snapshots worsened a held rank"

# 5. v1 advertises its successor.
HDRS="$DIR/headers.txt"
curl -fsS -D "$HDRS" -o /dev/null "http://$ADDR/v1/search?q=cinema&k=1" \
    || fail "/v1/search request failed"
grep -qi '^deprecation: true' "$HDRS" || fail "/v1/search missing Deprecation header"
grep -qi '^link: .*\/v2\/search.*successor-version' "$HDRS" \
    || fail "/v1/search missing successor-version Link to /v2/search"

kill -TERM "$S2_PID"
i=0
while kill -0 "$S2_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "server did not exit after SIGTERM"
    sleep 0.1
done

echo "approx-smoke: ok — /v2/search exact, dialled, erroring and streaming paths verified ($FRAMES progressive frames)"
