#!/bin/sh
# trace_smoke.sh — end-to-end check of the trace pipeline.
#
# Boots cmd/s2 with a file span exporter, sends one /v1/search request
# carrying a W3C traceparent header, shuts the server down (which drains
# the export queue), and asserts the exported trace:
#
#   * adopted the caller's trace ID and echoed a traceparent header
#   * contains the admission, query-family and index-phase spans
#   * parents them correctly (admission/family under http_request,
#     index phase under the family span)
#   * stamps every span with a non-zero duration
#
# Requires curl and jq (both in CI's ubuntu image). Exits non-zero with a
# diagnostic on the first failed assertion.
set -eu

PORT="${TRACE_SMOKE_PORT:-17261}"
ADDR="127.0.0.1:$PORT"
DIR="$(mktemp -d)"
BIN="$DIR/s2"
TRACES="$DIR/traces.ndjson"
LOG="$DIR/s2.log"
TRACE_ID="4bf92f3577b34da6a3ce929d0e0e4736"
PARENT_SPAN="00f067aa0ba902b7"

fail() { echo "trace-smoke: FAIL: $*" >&2; sed 's/^/  s2: /' "$LOG" >&2 || true; exit 1; }

go build -o "$BIN" ./cmd/s2

"$BIN" -n 64 -days 128 -debug-addr "$ADDR" -trace-export "$TRACES" -serve >"$LOG" 2>&1 &
S2_PID=$!
trap 'kill "$S2_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

# Wait for the debug server to come up.
i=0
until curl -fsS "http://$ADDR/debug/vars" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "server did not come up on $ADDR"
    kill -0 "$S2_PID" 2>/dev/null || fail "server exited early"
    sleep 0.1
done

# One traced search, propagating an upstream trace context.
HDRS="$DIR/headers.txt"
BODY="$DIR/body.json"
curl -fsS -D "$HDRS" -o "$BODY" \
    -H "traceparent: 00-$TRACE_ID-$PARENT_SPAN-01" \
    "http://$ADDR/v1/search?q=cinema&k=3&mode=similar" \
    || fail "traced /v1/search request failed"

grep -qi "^traceparent: 00-$TRACE_ID-" "$HDRS" \
    || fail "response did not echo a traceparent for trace $TRACE_ID"
[ "$(jq -r .trace_id "$BODY")" = "$TRACE_ID" ] \
    || fail "response body trace_id = $(jq -r .trace_id "$BODY"), want $TRACE_ID"
[ "$(jq '.results | length' "$BODY")" -gt 0 ] \
    || fail "search returned no results"

# Graceful shutdown drains and flushes the export queue.
kill -TERM "$S2_PID"
i=0
while kill -0 "$S2_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "server did not exit after SIGTERM"
    sleep 0.1
done

[ -s "$TRACES" ] || fail "no traces exported to $TRACES"
TRACE_JSON="$(grep "$TRACE_ID" "$TRACES" | head -n 1)"
[ -n "$TRACE_JSON" ] || fail "exported file has no trace $TRACE_ID"

span_field() { # span_field <name> <jq field> -> value
    printf '%s' "$TRACE_JSON" | jq -r --arg n "$1" ".spans[] | select(.name == \$n) | $2"
}

for name in http_request admission similar_to_id index_search; do
    [ -n "$(span_field "$name" .spanId)" ] || fail "exported trace missing span $name"
    start="$(span_field "$name" .startTimeUnixNano)"
    end="$(span_field "$name" .endTimeUnixNano)"
    [ "$end" -gt "$start" ] || fail "span $name has zero duration ($start .. $end)"
done

ROOT_ID="$(span_field http_request .spanId)"
FAM_ID="$(span_field similar_to_id .spanId)"
[ "$(span_field http_request .parentSpanId)" = "$PARENT_SPAN" ] \
    || fail "http_request parent = $(span_field http_request .parentSpanId), want caller span $PARENT_SPAN"
[ "$(span_field admission .parentSpanId)" = "$ROOT_ID" ] \
    || fail "admission span not parented under http_request"
[ "$(span_field similar_to_id .parentSpanId)" = "$ROOT_ID" ] \
    || fail "similar_to_id span not parented under http_request"
[ "$(span_field index_search .parentSpanId)" = "$FAM_ID" ] \
    || fail "index_search span not parented under similar_to_id"

echo "trace-smoke: ok — trace $TRACE_ID exported with correctly parented admission/query/index spans"
