#!/bin/sh
# api_check.sh enforces the unified query API surface (run via `make api-check`).
#
# Four checks:
#   1. Every exported Engine method on the query surface — names starting
#      with Similar, Query, Batch, Linear, or Search — must take a
#      context.Context as its first parameter. The pre-context entry points
#      in ALLOW are frozen as deprecated wrappers around Engine.Query; the
#      list only ever shrinks.
#   2. The deprecated wrappers take no NEW internal callers: production code
#      under cmd/ and internal/ goes through Engine.Query / core.NewRequest.
#      Frozen exceptions are listed inline below.
#   3. Exported HTTP search handler constructors accept the core.Searcher
#      interface, never *core.Engine — handlers must serve single-engine and
#      sharded deployments alike.
#   4. Every JSON field on the /v2 wire structs is snake_case.
set -eu

cd "$(dirname "$0")/.."

fail=0

# --- 1. context-first query surface -------------------------------------
# Frozen legacy allowlist. Do NOT add to it.
ALLOW='BatchSearch|LinearScan|QueryByBurst|QueryByBurstExplained|QueryByBurstOf|QueryByBurstOfExplained|SimilarByPeriods|SimilarDTW|SimilarQueries|SimilarQueriesExplained|SimilarToID|SimilarToIDExplained'

viol="$(grep -n -E 'func \(e \*Engine\) (Similar|Query|Batch|Linear|Search)[A-Za-z]*\(' internal/core/*.go |
	grep -v -E "Engine\) ($ALLOW)\(" |
	grep -v -E '\(ctx context\.Context' || true)"

if [ -n "$viol" ]; then
	echo "api-check: exported Engine query methods must take 'ctx context.Context' first:" >&2
	echo "$viol" >&2
	echo "(legacy pre-context wrappers are frozen in scripts/api_check.sh; do not extend the list)" >&2
	fail=1
fi

# --- 2. no new internal callers of the deprecated wrappers ---------------
# Exclusions, all frozen:
#   *_test.go                  compatibility coverage of the wrappers themselves
#   internal/core/core.go      wrapper definitions
#   internal/core/batch.go     wrapper definitions
#   internal/core/explain.go   wrapper definitions
#   internal/benchutil/record.go  timing harness measures the frozen surface
#   cmd/s2/main.go *Explained(    REPL explain / /debug/explain serve through
#                                 the frozen Explained entry points (no Query
#                                 equivalent exists by design)
callers="$(grep -rn -E "\.($ALLOW)\(" --include='*.go' cmd internal |
	grep -v '_test\.go:' |
	grep -v -E '^internal/core/(core|batch|explain)\.go:' |
	grep -v -E '^internal/benchutil/record\.go:' |
	grep -v -E '^cmd/s2/main\.go:[0-9]+:.*Explained\(' || true)"

if [ -n "$callers" ]; then
	echo "api-check: new internal caller of a deprecated query wrapper (use Engine.Query / core.NewRequest):" >&2
	echo "$callers" >&2
	fail=1
fi

# --- 3. handlers accept core.Searcher, not *core.Engine ------------------
handlers="$(grep -rn -E 'func [A-Z][A-Za-z0-9]*Handler\(' --include='*.go' internal/core internal/shard | grep -v '_test\.go:' || true)"
bad="$(echo "$handlers" | grep -E '\*Engine|\*core\.Engine' || true)"
if [ -n "$bad" ]; then
	echo "api-check: exported search handlers must accept the Searcher interface, not *Engine:" >&2
	echo "$bad" >&2
	fail=1
fi

# --- 4. /v2 wire structs use snake_case JSON fields ----------------------
tags="$(grep -n -o 'json:"[^"]*"' internal/core/search_v2.go | grep -v -E 'json:"(-|[a-z0-9_]+)(,omitempty)?"' || true)"
if [ -n "$tags" ]; then
	echo "api-check: /v2 JSON fields must be snake_case (internal/core/search_v2.go):" >&2
	echo "$tags" >&2
	fail=1
fi

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "api-check: ok"
