#!/bin/sh
# api_check.sh enforces the context-first query API (run via `make api-check`).
#
# Every exported Engine method on the query surface — names starting with
# Similar, Query, Batch, Linear, or Search — must take a context.Context as
# its first parameter. The pre-context entry points below are frozen as
# deprecated wrappers around Engine.Query; the list only ever shrinks.
# New query surface either goes through Engine.Query(ctx, Request) or takes
# a ctx directly.
set -eu

cd "$(dirname "$0")/.."

# Frozen legacy allowlist. Do NOT add to it.
ALLOW='BatchSearch|LinearScan|QueryByBurst|QueryByBurstExplained|QueryByBurstOf|QueryByBurstOfExplained|SimilarByPeriods|SimilarDTW|SimilarQueries|SimilarQueriesExplained|SimilarToID|SimilarToIDExplained'

viol="$(grep -n -E 'func \(e \*Engine\) (Similar|Query|Batch|Linear|Search)[A-Za-z]*\(' internal/core/*.go |
	grep -v -E "Engine\) ($ALLOW)\(" |
	grep -v -E '\(ctx context\.Context' || true)"

if [ -n "$viol" ]; then
	echo "api-check: exported Engine query methods must take 'ctx context.Context' first:" >&2
	echo "$viol" >&2
	echo "(legacy pre-context wrappers are frozen in scripts/api_check.sh; do not extend the list)" >&2
	exit 1
fi
echo "api-check: ok"
