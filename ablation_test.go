package repro

// Ablation benchmarks for the design choices DESIGN.md §5 calls out. Each
// reports the quantity the choice trades on as a custom metric, so
// `go test -bench Ablation` shows the effect of turning each one off.

import (
	"math"
	"testing"

	"repro/internal/benchutil"
	"repro/internal/mvptree"
	"repro/internal/seqstore"
	"repro/internal/series"
	"repro/internal/spectral"
	"repro/internal/vptree"
)

// treeFixture builds a store + tree over the shared corpus prefix.
func treeFixture(b *testing.B, n int, opts vptree.Options) (*vptree.Tree, *seqstore.Memory) {
	b.Helper()
	c := sharedCorpus(b)
	if n > len(c.Data) {
		n = len(c.Data)
	}
	store, err := seqstore.NewMemory(c.Data[0].Len())
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		if ids[i], err = store.Append(c.Data[i].Values); err != nil {
			b.Fatal(err)
		}
	}
	tree, err := vptree.Build(c.Spectra[:n], ids, opts)
	if err != nil {
		b.Fatal(err)
	}
	return tree, store
}

// retrievalsPerQuery averages FullRetrievals of 1NN over the corpus queries.
func retrievalsPerQuery(b *testing.B, tree *vptree.Tree, store *seqstore.Memory) float64 {
	b.Helper()
	c := sharedCorpus(b)
	var agg vptree.Stats
	for _, q := range c.Queries {
		_, st, err := tree.Search(q.Values, 1, tree.Features(), store)
		if err != nil {
			b.Fatal(err)
		}
		agg.Add(st)
	}
	return float64(agg.FullRetrievals) / float64(len(c.Queries))
}

// BenchmarkAblationGuidedDescent compares full retrievals with and without
// the §4.1 guided-descent heuristic.
func BenchmarkAblationGuidedDescent(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		unguided bool
	}{{"guided", false}, {"unguided", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			tree, store := treeFixture(b, 1024, vptree.Options{
				Budget: 16, PaperBounds: true, NoGuidedDescent: cfg.unguided,
			})
			var per float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				per = retrievalsPerQuery(b, tree, store)
			}
			b.ReportMetric(per, "retrievals/query")
		})
	}
}

// BenchmarkAblationBoundsSafety compares retrievals under the paper's fig. 9
// lower bound against the provably sound SafeBounds.
func BenchmarkAblationBoundsSafety(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		paper bool
	}{{"paper-fig9", true}, {"safe", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			tree, store := treeFixture(b, 1024, vptree.Options{Budget: 16, PaperBounds: cfg.paper})
			var per float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				per = retrievalsPerQuery(b, tree, store)
			}
			b.ReportMetric(per, "retrievals/query")
		})
	}
}

// BenchmarkAblationInformation isolates the two information sources of
// BestMinError: BestMin has only the minProperty, BestError only the
// omitted energy, BestMinError both. Metric: candidates examined for 1NN by
// the standalone fig. 22 procedure at one cell.
func BenchmarkAblationInformation(b *testing.B) {
	c := sharedCorpus(b)
	for _, m := range []spectral.Method{spectral.BestMin, spectral.BestError, spectral.BestMinError} {
		b.Run(m.String(), func(b *testing.B) {
			comp := make([]*spectral.Compressed, 1024)
			for i := range comp {
				var err error
				if comp[i], err = spectral.Compress(c.Spectra[i], m, 16); err != nil {
					b.Fatal(err)
				}
			}
			var frac float64
			b.ResetTimer()
			for bi := 0; bi < b.N; bi++ {
				total := 0
				for qi := range c.Queries {
					examined, err := benchutil.PruneSearch1NN(c, comp, qi)
					if err != nil {
						b.Fatal(err)
					}
					total += examined
				}
				frac = float64(total) / float64(len(c.Queries)) / 1024
			}
			b.ReportMetric(frac, "fraction-examined")
		})
	}
}

// BenchmarkAblationEarlyAbandon measures the exact-distance refinement with
// and without early abandoning, on a linear scan.
func BenchmarkAblationEarlyAbandon(b *testing.B) {
	c := sharedCorpus(b)
	n := 1024
	q := c.Queries[0].Values
	b.Run("with-abandon", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			best := math.Inf(1)
			for j := 0; j < n; j++ {
				d, abandoned, err := series.EuclideanEarlyAbandon(q, c.Data[j].Values, best)
				if err != nil {
					b.Fatal(err)
				}
				if !abandoned && d < best {
					best = d
				}
			}
		}
	})
	b.Run("without-abandon", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			best := math.Inf(1)
			for j := 0; j < n; j++ {
				d, err := series.Euclidean(q, c.Data[j].Values)
				if err != nil {
					b.Fatal(err)
				}
				if d < best {
					best = d
				}
			}
		}
	})
}

// BenchmarkAblationTreeVariant compares the binary VP-tree against the
// multi-vantage-point tree on the same corpus slice: wall time per 1NN
// query plus bound computations per query.
func BenchmarkAblationTreeVariant(b *testing.B) {
	c := sharedCorpus(b)
	const n = 1024
	store, err := seqstore.NewMemory(c.Data[0].Len())
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		if ids[i], err = store.Append(c.Data[i].Values); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("vptree", func(b *testing.B) {
		tree, err := vptree.Build(c.Spectra[:n], ids, vptree.Options{Budget: 16})
		if err != nil {
			b.Fatal(err)
		}
		var boundsPer float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var agg vptree.Stats
			for _, q := range c.Queries {
				_, st, err := tree.Search(q.Values, 1, tree.Features(), store)
				if err != nil {
					b.Fatal(err)
				}
				agg.Add(st)
			}
			boundsPer = float64(agg.BoundsComputed) / float64(len(c.Queries))
		}
		b.ReportMetric(boundsPer, "bounds/query")
	})
	b.Run("mvptree", func(b *testing.B) {
		tree, err := mvptree.Build(c.Spectra[:n], ids, mvptree.Options{Budget: 16})
		if err != nil {
			b.Fatal(err)
		}
		var boundsPer float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			total := 0
			for _, q := range c.Queries {
				_, st, err := tree.Search(q.Values, 1, store)
				if err != nil {
					b.Fatal(err)
				}
				total += st.BoundsComputed
			}
			boundsPer = float64(total) / float64(len(c.Queries))
		}
		b.ReportMetric(boundsPer, "bounds/query")
	})
}
