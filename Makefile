GO ?= go

.PHONY: all build test race vet fmt check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: vet fmt race

bench:
	$(GO) test -run=^$$ -bench=. -benchmem ./...
