GO ?= go

.PHONY: all build test race vet vet-lostcancel api-check fmt check bench bench-record bench-smoke fuzz-smoke kernel-check shard-check approx-check profile profile-smoke trace-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# vet-lostcancel runs only the lostcancel analyzer (dropped WithCancel /
# WithTimeout cancel funcs leak contexts). It needs its own target because
# passing an analyzer flag to `go vet` disables the default suite.
vet-lostcancel:
	$(GO) vet -lostcancel ./...

# api-check enforces the context-first query API: exported Engine query
# methods take ctx as their first parameter, modulo a frozen allowlist of
# deprecated pre-context wrappers. See scripts/api_check.sh.
api-check:
	sh scripts/api_check.sh

# fmt fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: vet vet-lostcancel api-check fmt race

# fuzz-smoke gives each spectral fuzz target a short budget on top of the
# checked-in seed corpus (testdata/fuzz/). Long exploratory runs are manual:
#   go test -run='^$$' -fuzz FuzzSafeBounds -fuzztime 10m ./internal/spectral
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz FuzzSafeBounds -fuzztime $(FUZZTIME) ./internal/spectral
	$(GO) test -run='^$$' -fuzz FuzzCompressInvariants -fuzztime $(FUZZTIME) ./internal/spectral
	$(GO) test -run='^$$' -fuzz FuzzArenaKernel -fuzztime $(FUZZTIME) ./internal/spectral
	$(GO) test -run='^$$' -fuzz FuzzParseTraceparent -fuzztime $(FUZZTIME) ./internal/obs
	$(GO) test -run='^$$' -fuzz FuzzFlatSearch -fuzztime $(FUZZTIME) ./internal/vptree
	$(GO) test -run='^$$' -fuzz FuzzShardRoute -fuzztime $(FUZZTIME) ./internal/shard
	$(GO) test -run='^$$' -fuzz FuzzV2Decode -fuzztime $(FUZZTIME) ./internal/core

# kernel-check is the flat-kernel acceptance suite: the arena/flat-path
# equivalence and property tests plus the scheduler-spread regressions, all
# under the race detector, followed by a smoke bench record pushed through
# validate, the kernel gate and a self-compare.
kernel-check:
	$(GO) test -race -run 'TestArena|TestFlat|TestSplitBatch|TestPopBlock|TestBatchSpread|TestConcurrentFlatStress' ./internal/spectral ./internal/vptree ./internal/core
	$(GO) run ./cmd/benchrec record -smoke -label kernelsmoke -o /tmp/BENCH_kernelsmoke.json
	$(GO) run ./cmd/benchrec validate /tmp/BENCH_kernelsmoke.json
	$(GO) run ./cmd/benchrec gate /tmp/BENCH_kernelsmoke.json
	$(GO) run ./cmd/benchrec compare /tmp/BENCH_kernelsmoke.json /tmp/BENCH_kernelsmoke.json

# shard-check is the scatter-gather acceptance suite: the full
# internal/shard package — the 100-trial equivalence property test across
# shard counts {1,2,3,8}, the rollback/cancellation stress tests and the
# wrapper-delegation regressions — under the race detector, followed by a
# smoke bench record pushed through validate and the gate (which enforces
# sharded_matches_single and the gather-overhead ceiling).
shard-check:
	$(GO) test -race -count=1 ./internal/shard/
	$(GO) run ./cmd/benchrec record -smoke -label shardsmoke -o /tmp/BENCH_shardsmoke.json
	$(GO) run ./cmd/benchrec validate /tmp/BENCH_shardsmoke.json
	$(GO) run ./cmd/benchrec gate /tmp/BENCH_shardsmoke.json

# trace-smoke boots cmd/s2 with a file span exporter, sends a traced
# /v1/search request and asserts the exported trace's spans and parentage.
# See scripts/trace_smoke.sh.
trace-smoke:
	sh scripts/trace_smoke.sh

# approx-check is the approximate-answering acceptance suite: the quality
# properties (bound-gap soundness, ε=0 bit-identity — single and sharded —
# and progressive-snapshot monotonicity) plus the v2 decode fuzz seeds under
# the race detector, a smoke bench record pushed through validate and the
# quality gate (recall floor at the default ε), and the end-to-end
# progressive-streaming smoke against the real binary.
approx-check:
	$(GO) test -race -count=1 -run 'TestApprox|TestShardedApprox|TestV2|TestNewRequest|FuzzV2Decode' ./internal/core ./internal/shard
	$(GO) run ./cmd/benchrec record -smoke -label approxsmoke -o /tmp/BENCH_approxsmoke.json
	$(GO) run ./cmd/benchrec validate /tmp/BENCH_approxsmoke.json
	$(GO) run ./cmd/benchrec gate /tmp/BENCH_approxsmoke.json
	sh scripts/approx_smoke.sh

bench:
	$(GO) test -run=^$$ -bench=. -benchmem ./...

# bench-record writes a schema-versioned perf snapshot (BENCH_<label>.json)
# from the standardized default workload. Compare two snapshots with
#   go run ./cmd/benchrec compare OLD.json NEW.json
BENCH_LABEL ?= dev
bench-record:
	$(GO) run ./cmd/benchrec record -label $(BENCH_LABEL)

# bench-smoke runs the tiny CI workload, validates the record structurally
# and applies the correctness gate (batch/flat/sharded match bits plus the
# gather-overhead ceiling; the perf speedup floor self-skips on small
# machines, so this stays safe for noisy CI runners).
bench-smoke:
	$(GO) run ./cmd/benchrec record -smoke -label smoke -o /tmp/BENCH_smoke.json
	$(GO) run ./cmd/benchrec validate /tmp/BENCH_smoke.json
	$(GO) run ./cmd/benchrec gate /tmp/BENCH_smoke.json

# profile records the default workload with mutex/block/heap pprof capture
# enabled; inspect with `go tool pprof profiles/mutex-profile-001.pprof`.
PROFILE_DIR ?= profiles
profile:
	$(GO) run ./cmd/benchrec record -label profile -o /tmp/BENCH_profile.json -profile-dir $(PROFILE_DIR)

# profile-smoke is the CI variant: tiny workload, assert every profile file
# exists and is non-empty, validate the schema-v4 record, and exercise the
# regression gate by comparing the record against itself.
profile-smoke:
	rm -rf /tmp/profile-smoke && mkdir -p /tmp/profile-smoke
	$(GO) run ./cmd/benchrec record -smoke -label profsmoke -o /tmp/BENCH_profsmoke.json -profile-dir /tmp/profile-smoke
	@for kind in mutex block heap; do \
		f="$$(ls /tmp/profile-smoke/$$kind-*.pprof 2>/dev/null | head -n1)"; \
		if [ -z "$$f" ] || [ ! -s "$$f" ]; then \
			echo "missing or empty $$kind profile in /tmp/profile-smoke"; exit 1; fi; \
		echo "ok: $$f ($$(wc -c < $$f) bytes)"; \
	done
	$(GO) run ./cmd/benchrec validate /tmp/BENCH_profsmoke.json
	$(GO) run ./cmd/benchrec compare /tmp/BENCH_profsmoke.json /tmp/BENCH_profsmoke.json
