package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesRun executes every example binary end-to-end (skipped in
// -short mode: each builds and replays a dataset). An example that exits
// non-zero or prints nothing fails.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow; run without -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 6 {
		t.Fatalf("expected >= 6 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
		})
	}
}
