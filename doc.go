// Package repro is the root of the query-log mining reproduction (Vlachos,
// Meek, Vagena, Gunopulos: "Identifying Similarities, Periodicities and
// Bursts for Online Search Queries", SIGMOD 2004).
//
// The library lives under internal/ (see README.md for the map), the
// executables under cmd/, and runnable examples under examples/. This root
// package carries the repository-level test assets:
//
//   - bench_test.go       one benchmark per paper table/figure
//   - ablation_test.go    benchmarks for the DESIGN.md §5 design choices
//   - integration_test.go cross-module end-to-end pipelines
//   - examples_test.go    compiles-and-runs checks for every example
package repro
