package repro

// Cross-module integration tests: the full pipelines a user of the library
// would actually run, checked end-to-end for internal consistency.

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/burst"
	"repro/internal/burstdb"
	"repro/internal/core"
	"repro/internal/dtw"
	"repro/internal/minisql"
	"repro/internal/mvptree"
	"repro/internal/querylog"
	"repro/internal/seqstore"
	"repro/internal/series"
	"repro/internal/spectral"
	"repro/internal/vptree"
)

// TestFourSearchEnginesAgree cross-checks every nearest-neighbour path in
// the repository: engine index (VP-tree + SafeBounds), engine linear scan,
// a standalone mvp-tree, and DTW with band radius 0 (≡ Euclidean).
func TestFourSearchEnginesAgree(t *testing.T) {
	g := querylog.NewGenerator(querylog.DefaultStart, 256, 77)
	data := querylog.StandardizeAll(g.Dataset(120))
	queries := querylog.StandardizeAll(g.Queries(4))

	engine, err := core.NewEngine(data, core.Config{Budget: 12})
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	// Standalone mvp-tree over the same standardized values.
	store, err := seqstore.NewMemory(256)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]*spectral.HalfSpectrum, len(data))
	ids := make([]int, len(data))
	values := make([][]float64, len(data))
	for i, s := range data {
		if ids[i], err = store.Append(s.Values); err != nil {
			t.Fatal(err)
		}
		if specs[i], err = spectral.FromValues(s.Values); err != nil {
			t.Fatal(err)
		}
		values[i] = s.Values
	}
	mvp, err := mvptree.Build(specs, ids, mvptree.Options{Budget: 12})
	if err != nil {
		t.Fatal(err)
	}

	for qi, q := range queries {
		idx, _, err := engine.SimilarQueries(q.Values, 1)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := engine.LinearScan(q.Values, 1)
		if err != nil {
			t.Fatal(err)
		}
		mv, _, err := mvp.Search(q.Values, 1, store)
		if err != nil {
			t.Fatal(err)
		}
		dt, _, err := dtw.Search(values, q.Values, 0)
		if err != nil {
			t.Fatal(err)
		}
		d := idx[0].Dist
		for name, other := range map[string]float64{
			"linear scan": lin[0].Dist,
			"mvp-tree":    mv[0].Dist,
			"dtw(r=0)":    dt.Dist,
		} {
			if math.Abs(other-d) > 1e-9 {
				t.Errorf("query %d: %s 1NN dist %v != index %v", qi, name, other, d)
			}
		}
	}
}

// TestPersistencePipeline saves every persistent artifact (sequence store,
// VP-tree, burst DB) and reopens them into a working query path.
func TestPersistencePipeline(t *testing.T) {
	dir := t.TempDir()
	g := querylog.NewGenerator(querylog.DefaultStart, 128, 78)
	data := querylog.StandardizeAll(g.Dataset(60))
	q := querylog.StandardizeAll(g.Queries(1))[0]

	// Build phase: everything written to disk.
	seqPath := filepath.Join(dir, "seqs.bin")
	treePath := filepath.Join(dir, "tree.bin")
	burstPath := filepath.Join(dir, "bursts.bin")
	{
		store, err := seqstore.Create(seqPath, 128)
		if err != nil {
			t.Fatal(err)
		}
		specs := make([]*spectral.HalfSpectrum, len(data))
		ids := make([]int, len(data))
		bdb := burstdbFromSeries(t, data)
		for i, s := range data {
			if ids[i], err = store.Append(s.Values); err != nil {
				t.Fatal(err)
			}
			if specs[i], err = spectral.FromValues(s.Values); err != nil {
				t.Fatal(err)
			}
		}
		tree, err := vptree.Build(specs, ids, vptree.Options{Budget: 10})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Save(treePath); err != nil {
			t.Fatal(err)
		}
		if err := bdb.Save(burstPath); err != nil {
			t.Fatal(err)
		}
		if err := store.Sync(); err != nil {
			t.Fatal(err)
		}
		store.Close()
	}

	// Query phase: a fresh process would do exactly this.
	store, err := seqstore.Open(seqPath)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	tree, err := vptree.Load(treePath)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := tree.Search(q.Values, 2, tree.Features(), store)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	// Verify exactness against a direct scan of the reopened store.
	best := math.Inf(1)
	buf := make([]float64, 128)
	for id := 0; id < store.Len(); id++ {
		if err := store.GetInto(id, buf); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := range buf {
			d := buf[i] - q.Values[i]
			sum += d * d
		}
		if d := math.Sqrt(sum); d < best {
			best = d
		}
	}
	if math.Abs(res[0].Dist-best) > 1e-9 {
		t.Errorf("loaded tree 1NN %v vs scan %v", res[0].Dist, best)
	}

	// Burst DB reloads and answers SQL.
	bdb, err := loadBurstDB(burstPath)
	if err != nil {
		t.Fatal(err)
	}
	sqlRes, err := minisql.Run(bdb, "SELECT * FROM bursts WHERE startdate < 64 AND enddate > 32")
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := bdb.Overlapping(33, 63, burstdb.PlanAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(sqlRes.Records) != len(ref) {
		t.Errorf("sql %d rows vs overlap API %d", len(sqlRes.Records), len(ref))
	}
}

// TestGenlogToEngine runs the data path an external user follows: write a
// dataset with the genlog format, load it back, build an engine, query it.
func TestGenlogToEngine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	g := querylog.NewGenerator(querylog.DefaultStart, 128, 79)
	orig := append(g.Exemplars(), g.Dataset(20)...)
	st, err := seqstore.Create(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	namesFile := ""
	for _, s := range orig {
		if _, err := st.Append(s.Values); err != nil {
			t.Fatal(err)
		}
		namesFile += s.Name + "\n"
	}
	st.Close()
	if err := writeFile(path+".names", namesFile); err != nil {
		t.Fatal(err)
	}

	loaded, err := querylog.LoadBinary(path, querylog.DefaultStart)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(loaded, core.Config{Budget: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	id, ok := engine.Lookup(querylog.Cinema)
	if !ok {
		t.Fatal("cinema lost in round trip")
	}
	det, err := engine.PeriodsOf(id)
	if err != nil {
		t.Fatal(err)
	}
	if !det.HasPeriodNear(7, 0.3) {
		t.Errorf("weekly period lost: %v", det.Top(3))
	}
}

// --- helpers ---

func burstdbFromSeries(t *testing.T, data []*series.Series) *burstdb.DB {
	t.Helper()
	db := burstdb.New()
	for i, s := range data {
		det, err := burst.DetectStandardized(s.Values, burst.LongWindow, burst.DefaultCutoff)
		if err != nil {
			t.Fatal(err)
		}
		db.InsertBursts(int64(i), det.Bursts)
	}
	return db
}

func loadBurstDB(path string) (*burstdb.DB, error) {
	return burstdb.Load(path)
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
