// Recommend: the paper's first motivating application (§1) — keyword
// recommendation by demand-pattern similarity. For each probe query the
// engine retrieves the semantically related terms, i.e. the ones users
// request on the same rhythm, and compares the index's work against the
// naive linear scan.
//
//	go run ./examples/recommend
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/querylog"
)

func main() {
	// A larger database so the recommendations have material to draw from:
	// every archetype is represented dozens of times with jittered
	// parameters (different amplitudes, phases, noise levels).
	g := querylog.New(7)
	data := append(g.Exemplars(), g.Dataset(600)...)
	engine, err := core.NewEngine(data, core.Config{Budget: 24})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	fmt.Printf("database: %d query terms\n\n", engine.Len())

	probes := []string{
		querylog.Cinema,    // weekend-peaked
		querylog.FullMoon,  // lunar-month rhythm
		querylog.Christmas, // seasonal accumulation
		querylog.Elvis,     // anniversary spikes
	}
	for _, probe := range probes {
		id, ok := engine.Lookup(probe)
		if !ok {
			log.Fatalf("probe %q missing", probe)
		}

		start := time.Now()
		recs, stats, err := engine.SimilarToID(id, 5)
		if err != nil {
			log.Fatal(err)
		}
		indexTime := time.Since(start)

		s, _ := engine.Series(id)
		start = time.Now()
		lin, err := engine.LinearScan(s.Values, 6) // includes the probe itself
		if err != nil {
			log.Fatal(err)
		}
		scanTime := time.Since(start)

		fmt.Printf("users searching %q also search:\n", probe)
		for i, r := range recs {
			fmt.Printf("  %d. %-24s (dist %.2f)\n", i+1, r.Name, r.Dist)
		}
		fmt.Printf("  index: %v, examined %d/%d full sequences; linear scan: %v\n",
			indexTime.Round(time.Microsecond), stats.FullRetrievals,
			engine.Len(), scanTime.Round(time.Microsecond))

		// Cross-check: the index's top answer equals the scan's best
		// non-self answer.
		best := lin[0]
		if best.ID == id && len(lin) > 1 {
			best = lin[1]
		}
		if len(recs) > 0 && recs[0].ID != best.ID {
			fmt.Printf("  WARNING: index top %q differs from scan top %q\n",
				recs[0].Name, best.Name)
		}
		fmt.Println()
	}
}
