// Periodicity: the §5 automatic period detector on the four fig. 13
// archetypes, plus a false-alarm calibration sweep showing how the
// exponential-tail threshold trades recall against false alarms as the
// confidence level varies.
//
//	go run ./examples/periodicity
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/periods"
	"repro/internal/querylog"
)

func main() {
	g := querylog.New(3)

	fmt.Println("fig. 13 — discovered periods at 99.99% confidence:")
	for _, name := range []string{querylog.Cinema, querylog.FullMoon, querylog.Nordstrom, querylog.DudleyMoore} {
		s := g.Exemplar(name)
		det, err := periods.Detect(s.Values, periods.DefaultConfidence)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s threshold=%7.3f ", name, det.Threshold)
		if len(det.Periods) == 0 {
			fmt.Println(" no significant periods (as expected for bursty news)")
			continue
		}
		for i, p := range det.Top(3) {
			fmt.Printf(" P%d=%.2f", i+1, p.Length)
		}
		fmt.Println()
	}
	fmt.Println()

	// Calibration: run the detector on pure white noise at several
	// confidence levels and report the measured false-alarm rate per bin —
	// it should track the configured probability p.
	fmt.Println("false-alarm calibration on white noise (1000 trials x 512 days):")
	fmt.Printf("  %-10s %-14s %-14s\n", "p", "measured", "alarms/bins")
	rng := rand.New(rand.NewSource(9))
	trials := 1000
	noise := make([][]float64, trials)
	for t := range noise {
		noise[t] = make([]float64, 512)
		for i := range noise[t] {
			noise[t][i] = rng.NormFloat64()
		}
	}
	for _, p := range []float64{1e-2, 1e-3, 1e-4} {
		alarms, bins := 0, 0
		for _, x := range noise {
			det, err := periods.Detect(x, p)
			if err != nil {
				log.Fatal(err)
			}
			alarms += len(det.Periods)
			bins += len(det.Periodogram) - 1
		}
		fmt.Printf("  %-10.0e %-14.2e %d/%d\n", p, float64(alarms)/float64(bins), alarms, bins)
	}
	fmt.Println()

	// Recall: plant a sinusoid of decreasing amplitude in noise and report
	// the weakest amplitude the detector still finds.
	fmt.Println("detection threshold for a planted 14-day cycle in unit noise:")
	for _, amp := range []float64{1.0, 0.5, 0.3, 0.2, 0.1} {
		found := 0
		const reps = 50
		for r := 0; r < reps; r++ {
			x := make([]float64, 512)
			for i := range x {
				x[i] = amp*sin14(i) + rng.NormFloat64()
			}
			det, err := periods.Detect(x, periods.DefaultConfidence)
			if err != nil {
				log.Fatal(err)
			}
			if det.HasPeriodNear(14.2, 1.0) {
				found++
			}
		}
		fmt.Printf("  amplitude %.2f: detected in %d/%d runs\n", amp, found, reps)
	}
}

// sin14 is a sinusoid whose period 512/36 ≈ 14.22 days lands exactly on a
// periodogram bin, so no spectral leakage blurs the detection threshold.
func sin14(i int) float64 {
	const period = 512.0 / 36.0
	return math.Sin(2 * math.Pi * float64(i) / period)
}
