// Monitor: the online deployment the paper motivates — a live search
// service consuming one day of query counts at a time and flagging bursts
// as they develop, instead of re-scanning history. The example replays
// three years of the "easter" and "world trade center" demand curves
// through the incremental detector and prints burst boundaries the day
// they are detected, then checks the sliding-window period tracker on
// "cinema".
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"

	"repro/internal/burst"
	"repro/internal/periods"
	"repro/internal/querylog"
	"repro/internal/stream"
)

func main() {
	g := querylog.New(13)

	for _, name := range []string{querylog.Easter, querylog.WorldTradeCenter} {
		s := g.Exemplar(name)
		det, err := stream.NewBurstDetector(burst.LongWindow, burst.DefaultCutoff)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("live burst monitor for %q:\n", name)
		for day, v := range s.Values {
			for _, e := range det.Push(v) {
				date := s.DateOf(e.Day).Format("2006-01-02")
				switch e.Kind {
				case stream.BurstOpen:
					fmt.Printf("  %s  burst OPEN\n", date)
				case stream.BurstClose:
					fmt.Printf("  %s  burst CLOSED: %s .. %s (avg %.1f)\n",
						date,
						s.DateOf(e.Burst.Start).Format("2006-01-02"),
						s.DateOf(e.Burst.End).Format("2006-01-02"),
						e.Burst.Avg)
				}
			}
			_ = day
		}
		for _, e := range det.Flush() {
			fmt.Printf("  (stream end) burst closed: %s .. %s\n",
				s.DateOf(e.Burst.Start).Format("2006-01-02"),
				s.DateOf(e.Burst.End).Format("2006-01-02"))
		}
		fmt.Println()
	}

	// Sliding-window periodicity: after each quarter, what rhythm does the
	// last year of "cinema" show?
	s := g.Exemplar(querylog.Cinema)
	tracker, err := stream.NewPeriodTracker(364)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sliding-window period tracking for \"cinema\" (last 364 days):")
	for day, v := range s.Values {
		tracker.Push(v)
		if !tracker.Ready() || (day+1)%91 != 0 {
			continue
		}
		det, err := tracker.Detect(periods.DefaultConfidence)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  as of %s:", s.DateOf(day).Format("2006-01-02"))
		for i, p := range det.Top(2) {
			fmt.Printf("  P%d=%.2f", i+1, p.Length)
		}
		fmt.Println()
	}
}
