// Newsburst: the paper's second motivating application (§1) — discovery of
// important news events as demand bursts, and 'query-by-burst' retrieval of
// queries that spiked together (§6, fig. 19). The example scans a database
// for one-shot bursts, ranks the most intense events, and for each event
// finds the co-bursting queries through the indexed burst store.
//
//	go run ./examples/newsburst
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/burst"
	"repro/internal/core"
	"repro/internal/querylog"
)

func main() {
	g := querylog.New(11)
	data := append(g.Exemplars(), g.Dataset(300)...)
	engine, err := core.NewEngine(data, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	// Rank every stored short-term burst by intensity (average standardized
	// value): the strongest ones are the "important news" candidates.
	type event struct {
		id int
		b  burst.Burst
	}
	var events []event
	for id := 0; id < engine.Len(); id++ {
		for _, b := range engine.BurstsOf(id, core.Short) {
			events = append(events, event{id: id, b: b})
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].b.Avg > events[b].b.Avg })

	fmt.Println("strongest demand bursts in the database (short-term window):")
	shown := 0
	seen := map[int]bool{}
	for _, ev := range events {
		if seen[ev.id] {
			continue // one event per query term
		}
		seen[ev.id] = true
		s, _ := engine.Series(ev.id)
		fmt.Printf("  %-24s %s .. %s  intensity %.2f\n",
			engine.Name(ev.id),
			s.DateOf(ev.b.Start).Format("2006-01-02"),
			s.DateOf(ev.b.End).Format("2006-01-02"),
			ev.b.Avg)
		shown++
		if shown == 8 {
			break
		}
	}
	fmt.Println()

	// Fig. 19: for the news queries, retrieve the co-bursting terms.
	for _, probe := range []string{querylog.WorldTradeCenter, querylog.Hurricane, querylog.Christmas} {
		id, ok := engine.Lookup(probe)
		if !ok {
			continue
		}
		matches, err := engine.QueryByBurstOf(id, 4, core.Long)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query-by-burst %q:\n", probe)
		for _, m := range matches {
			fmt.Printf("  %-24s BSim=%.3f\n", m.Name, m.Score)
		}
		fmt.Println()
	}
}
