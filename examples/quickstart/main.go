// Quickstart: build an engine over a small synthetic query-log database and
// run one of each query type the system supports — similarity search,
// period discovery, burst detection and query-by-burst.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/querylog"
)

func main() {
	// 1. Generate a database: the paper's exemplar queries ("cinema",
	//    "easter", "elvis", ...) plus 100 background series, 1024 daily
	//    observations each (2000-2002).
	g := querylog.New(42)
	data := append(g.Exemplars(), g.Dataset(100)...)

	// 2. Build the engine. The zero config uses the paper defaults:
	//    BestMinError compression at budget c=16 (2*16+1 doubles per
	//    sequence), a VP-tree index, and 7/30-day burst databases.
	engine, err := core.NewEngine(data, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	fmt.Printf("indexed %d series of %d days\n\n", engine.Len(), engine.SeqLen())

	// 3. Similarity search: which queries have demand patterns like
	//    "cinema" (weekly moviegoing peaks)?
	id, _ := engine.Lookup(querylog.Cinema)
	neighbors, stats, err := engine.SimilarToID(id, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("queries similar to 'cinema':")
	for _, n := range neighbors {
		fmt.Printf("  %-22s dist=%.2f\n", n.Name, n.Dist)
	}
	fmt.Printf("  (index examined %d of %d full sequences)\n\n",
		stats.FullRetrievals, engine.Len())

	// 4. Period discovery: the weekly rhythm should stand out.
	det, err := engine.PeriodsOf(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("significant periods of 'cinema':")
	for i, p := range det.Top(3) {
		fmt.Printf("  P%d = %.2f days\n", i+1, p.Length)
	}
	fmt.Println()

	// 5. Burst detection on "easter": demand accumulates toward the moving
	//    holiday and collapses right after it, in every year.
	eid, _ := engine.Lookup(querylog.Easter)
	s, _ := engine.Series(eid)
	bursts, err := engine.Bursts(s.Values, core.Long)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("long-term bursts of 'easter':")
	for _, b := range bursts.Bursts {
		fmt.Printf("  %s .. %s (avg %.2f)\n",
			s.DateOf(b.Start).Format("2006-01-02"),
			s.DateOf(b.End).Format("2006-01-02"), b.Avg)
	}
	fmt.Println()

	// 6. Query-by-burst: which queries burst when "halloween" does?
	hid, _ := engine.Lookup(querylog.Halloween)
	matches, err := engine.QueryByBurstOf(hid, 3, core.Long)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("burst patterns similar to 'halloween':")
	for _, m := range matches {
		fmt.Printf("  %-22s BSim=%.3f\n", m.Name, m.Score)
	}
}
