// Sqlburst: the paper's §6.3 execution path end-to-end — burst features
// extracted from a query-log dataset are stored in the relational burst
// table and queried with the actual SQL of fig. 18 (here against an
// embedded table with B-tree indexes instead of SQL Server). The example
// also round-trips the dataset through CSV to show the external-data path.
//
//	go run ./examples/sqlburst
package main

import (
	"bytes"
	"fmt"
	"log"
	"strconv"

	"repro/internal/burst"
	"repro/internal/burstdb"
	"repro/internal/minisql"
	"repro/internal/querylog"
)

func main() {
	// 1. Generate a dataset and round-trip it through CSV — the same
	//    format cmd/genlog emits and real exports would use.
	g := querylog.New(5)
	original := append(g.Exemplars(), g.Dataset(60)...)
	var csv bytes.Buffer
	for _, s := range original {
		csv.WriteString(s.Name)
		for _, v := range s.Values {
			csv.WriteByte(',')
			csv.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		csv.WriteByte('\n')
	}
	csvBytes := csv.Len()
	data, err := querylog.LoadCSV(&csv, querylog.DefaultStart)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d series from CSV (%d bytes)\n\n", len(data), csvBytes)

	// 2. Extract long-term burst features into the relational store.
	db := burstdb.New()
	names := map[int64]string{}
	for _, s := range data {
		det, err := burst.DetectStandardized(s.Values, burst.LongWindow, burst.DefaultCutoff)
		if err != nil {
			log.Fatal(err)
		}
		db.InsertBursts(int64(s.ID), det.Bursts)
		names[int64(s.ID)] = s.Name
	}
	fmt.Printf("burst table: %d rows over %d sequences\n\n", db.Len(), db.Sequences())

	// 3. The fig. 18 query: which bursts overlap late October 2000
	//    (days 290..310 from 2000-01-01)? This is exactly
	//    "B.startDate < Q.endDate AND B.endDate > Q.startDate".
	queries := []string{
		"SELECT * FROM bursts WHERE startDate < 310 AND endDate > 290 ORDER BY avgValue DESC LIMIT 8",
		"SELECT seqid, avgvalue FROM bursts WHERE avgValue >= 2 ORDER BY avgValue DESC LIMIT 5",
		"SELECT * FROM bursts WHERE startDate >= 640 AND startDate <= 680",
	}
	for _, stmt := range queries {
		fmt.Printf("sql> %s\n", stmt)
		res, err := minisql.Run(db, stmt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  plan: %v\n  scanned %d rows, matched %d\n",
			res.Plan, res.Scanned, len(res.Records))
		for _, r := range res.Records {
			fmt.Printf("  %-24s start=%4d end=%4d avg=%.2f\n",
				names[r.SeqID], r.Start, r.End, r.Avg)
		}
		fmt.Println()
	}
}
